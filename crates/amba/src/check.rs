//! Protocol rule checking shared by both bus models (paper §3.5).
//!
//! Two layers are provided:
//!
//! * [`validate_transaction`] — static legality of a single transaction as
//!   issued at a TLM port (alignment, 1 KB boundary rule, non-empty burst).
//!   The transaction-level model calls this on every port call; the
//!   workload generators use it as a post-condition.
//! * [`ProtocolChecker`] — a streaming observer of address-phase beats used
//!   by the pin-accurate model: it follows each burst and checks the
//!   `NONSEQ`/`SEQ` sequencing and the per-beat address progression that
//!   the AMBA 2.0 specification requires.
//!
//! Violations are recorded into a [`simkern::assertion::AssertionSink`], so
//! a performance run can accumulate them while a unit test can use a
//! panicking sink.

use std::fmt;

use simkern::assertion::{AssertionKind, AssertionSink, Severity};
use simkern::time::Cycle;

use crate::burst::BurstSequence;
use crate::ids::{Addr, MasterId};
use crate::signal::{HBurst, HSize, HTrans};
use crate::txn::Transaction;

/// A static rule violated by a single transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnRule {
    /// The start address is not aligned to the transfer size.
    Misaligned,
    /// An incrementing burst crosses a 1 KB address boundary.
    CrossesKibBoundary,
    /// The transaction would transfer zero bytes.
    EmptyBurst,
}

impl fmt::Display for TxnRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnRule::Misaligned => write!(f, "address not aligned to transfer size"),
            TxnRule::CrossesKibBoundary => write!(f, "burst crosses a 1 KB boundary"),
            TxnRule::EmptyBurst => write!(f, "burst transfers zero bytes"),
        }
    }
}

impl std::error::Error for TxnRule {}

/// Checks the static legality of a transaction.
///
/// # Errors
///
/// Returns the first violated [`TxnRule`].
pub fn validate_transaction(txn: &Transaction) -> Result<(), TxnRule> {
    if !txn.addr.is_aligned(txn.size.bytes()) {
        return Err(TxnRule::Misaligned);
    }
    if txn.bytes() == 0 {
        return Err(TxnRule::EmptyBurst);
    }
    let seq = BurstSequence::new(txn.addr, txn.burst, txn.size);
    if seq.crosses_1kb_boundary() {
        return Err(TxnRule::CrossesKibBoundary);
    }
    Ok(())
}

#[derive(Debug, Clone, Copy)]
struct BurstProgress {
    master: MasterId,
    burst: HBurst,
    size: HSize,
    start: Addr,
    beats_done: u32,
}

/// Streaming address-phase protocol checker for the pin-accurate model.
///
/// Feed it one observation per cycle in which an address phase is presented
/// on the bus (i.e. whenever `HREADY` was high in the previous cycle and a
/// granted master drives `HTRANS`). It verifies:
///
/// * the first beat of a burst is `NONSEQ`;
/// * `SEQ` beats carry exactly the address the burst arithmetic predicts;
/// * a fixed-length burst is not over-run;
/// * `BUSY` is only inserted in the middle of a burst.
#[derive(Debug, Default)]
pub struct ProtocolChecker {
    current: Option<BurstProgress>,
    observed_beats: u64,
    violations_recorded: u64,
}

impl ProtocolChecker {
    /// Creates a checker with no burst in progress.
    #[must_use]
    pub fn new() -> Self {
        ProtocolChecker::default()
    }

    /// Total number of active (NONSEQ/SEQ) beats observed.
    #[must_use]
    pub fn observed_beats(&self) -> u64 {
        self.observed_beats
    }

    /// Total number of violations this checker recorded.
    #[must_use]
    pub fn violations_recorded(&self) -> u64 {
        self.violations_recorded
    }

    /// Observes one address phase.
    ///
    /// `master` is the currently granted master, `trans` the driven
    /// `HTRANS`, `addr`/`burst`/`size` the driven address-phase controls.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_address_phase(
        &mut self,
        now: Cycle,
        master: MasterId,
        trans: HTrans,
        addr: Addr,
        burst: HBurst,
        size: HSize,
        sink: &mut AssertionSink,
    ) {
        match trans {
            HTrans::Idle => {
                // An IDLE transfer ends any burst the master was running.
                if let Some(progress) = &self.current {
                    if progress.master == master {
                        self.current = None;
                    }
                }
            }
            HTrans::Busy => {
                let in_burst = self
                    .current
                    .as_ref()
                    .is_some_and(|p| p.master == master && p.beats_done > 0);
                if !in_burst {
                    self.record(sink, now, "BUSY driven outside of an active burst");
                }
            }
            HTrans::NonSeq => {
                self.observed_beats += 1;
                if !addr.is_aligned(size.bytes()) {
                    self.record(sink, now, "NONSEQ address not aligned to HSIZE");
                }
                self.current = Some(BurstProgress {
                    master,
                    burst,
                    size,
                    start: addr,
                    beats_done: 1,
                });
            }
            HTrans::Seq => {
                self.observed_beats += 1;
                let Some(progress) = self.current else {
                    self.record(sink, now, "SEQ driven with no burst in progress");
                    return;
                };
                if progress.master != master {
                    self.record(
                        sink,
                        now,
                        "SEQ driven by a master that does not own the current burst",
                    );
                    return;
                }
                if let Some(expected_total) = progress.burst.fixed_beats() {
                    if progress.beats_done >= expected_total {
                        self.record(sink, now, "fixed-length burst over-run (extra SEQ beat)");
                        return;
                    }
                }
                let kind = crate::burst::BurstKind::from_hburst(progress.burst, u32::MAX);
                let seq = BurstSequence::new(progress.start, kind, progress.size);
                let expected = seq.beat_addr(progress.beats_done);
                if expected != addr {
                    self.record(sink, now, "SEQ beat address does not follow the burst");
                }
                if let Some(p) = self.current.as_mut() {
                    p.beats_done += 1;
                }
            }
        }
    }

    fn record(&mut self, sink: &mut AssertionSink, now: Cycle, message: &str) {
        self.violations_recorded += 1;
        sink.record(
            now,
            AssertionKind::Protocol,
            Severity::Error,
            "ahb-protocol",
            message,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BurstKind;
    use crate::txn::TransferDirection;

    fn txn(addr: u32, burst: BurstKind, size: HSize) -> Transaction {
        Transaction::new(
            MasterId::new(0),
            Addr::new(addr),
            TransferDirection::Read,
            burst,
            size,
        )
    }

    #[test]
    fn aligned_non_crossing_transactions_are_legal() {
        assert!(validate_transaction(&txn(0x2000_0000, BurstKind::Incr8, HSize::Word)).is_ok());
        assert!(
            validate_transaction(&txn(0x2000_0002, BurstKind::Single, HSize::Halfword)).is_ok()
        );
    }

    #[test]
    fn misaligned_transactions_are_rejected() {
        assert_eq!(
            validate_transaction(&txn(0x2000_0002, BurstKind::Single, HSize::Word)),
            Err(TxnRule::Misaligned)
        );
    }

    #[test]
    fn boundary_crossing_transactions_are_rejected() {
        assert_eq!(
            validate_transaction(&txn(0x2000_03F8, BurstKind::Incr16, HSize::Word)),
            Err(TxnRule::CrossesKibBoundary)
        );
        // Wrapping bursts stay inside their aligned block and pass.
        assert!(validate_transaction(&txn(0x2000_03F8, BurstKind::Wrap16, HSize::Word)).is_ok());
    }

    #[test]
    fn rule_display_texts() {
        assert!(TxnRule::Misaligned.to_string().contains("aligned"));
        assert!(TxnRule::CrossesKibBoundary.to_string().contains("1 KB"));
        assert!(TxnRule::EmptyBurst.to_string().contains("zero"));
    }

    fn observe_burst(checker: &mut ProtocolChecker, sink: &mut AssertionSink, addrs: &[u32]) {
        let master = MasterId::new(1);
        for (i, a) in addrs.iter().enumerate() {
            let trans = if i == 0 { HTrans::NonSeq } else { HTrans::Seq };
            checker.observe_address_phase(
                Cycle::new(i as u64),
                master,
                trans,
                Addr::new(*a),
                HBurst::Incr4,
                HSize::Word,
                sink,
            );
        }
    }

    #[test]
    fn well_formed_incr4_produces_no_violations() {
        let mut checker = ProtocolChecker::new();
        let mut sink = AssertionSink::new();
        observe_burst(&mut checker, &mut sink, &[0x100, 0x104, 0x108, 0x10C]);
        assert!(sink.is_clean());
        assert_eq!(checker.observed_beats(), 4);
        assert_eq!(checker.violations_recorded(), 0);
    }

    #[test]
    fn wrong_seq_address_is_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut sink = AssertionSink::new();
        observe_burst(&mut checker, &mut sink, &[0x100, 0x104, 0x110, 0x10C]);
        assert_eq!(sink.error_count(), 1, "the out-of-sequence beat is flagged");
    }

    #[test]
    fn seq_without_nonseq_is_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut sink = AssertionSink::new();
        checker.observe_address_phase(
            Cycle::new(0),
            MasterId::new(0),
            HTrans::Seq,
            Addr::new(0x100),
            HBurst::Incr4,
            HSize::Word,
            &mut sink,
        );
        assert_eq!(sink.error_count(), 1);
    }

    #[test]
    fn burst_over_run_is_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut sink = AssertionSink::new();
        observe_burst(
            &mut checker,
            &mut sink,
            &[0x100, 0x104, 0x108, 0x10C, 0x110],
        );
        assert_eq!(sink.error_count(), 1);
    }

    #[test]
    fn busy_outside_burst_is_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut sink = AssertionSink::new();
        checker.observe_address_phase(
            Cycle::new(0),
            MasterId::new(0),
            HTrans::Busy,
            Addr::new(0),
            HBurst::Incr,
            HSize::Word,
            &mut sink,
        );
        assert_eq!(sink.error_count(), 1);
    }

    #[test]
    fn idle_ends_the_current_burst() {
        let mut checker = ProtocolChecker::new();
        let mut sink = AssertionSink::new();
        let master = MasterId::new(1);
        checker.observe_address_phase(
            Cycle::new(0),
            master,
            HTrans::NonSeq,
            Addr::new(0x100),
            HBurst::Incr4,
            HSize::Word,
            &mut sink,
        );
        checker.observe_address_phase(
            Cycle::new(1),
            master,
            HTrans::Idle,
            Addr::new(0),
            HBurst::Incr4,
            HSize::Word,
            &mut sink,
        );
        checker.observe_address_phase(
            Cycle::new(2),
            master,
            HTrans::Seq,
            Addr::new(0x104),
            HBurst::Incr4,
            HSize::Word,
            &mut sink,
        );
        assert_eq!(sink.error_count(), 1, "SEQ after IDLE has no burst context");
    }

    #[test]
    fn misaligned_nonseq_is_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut sink = AssertionSink::new();
        checker.observe_address_phase(
            Cycle::new(0),
            MasterId::new(0),
            HTrans::NonSeq,
            Addr::new(0x101),
            HBurst::Single,
            HSize::Word,
            &mut sink,
        );
        assert_eq!(sink.error_count(), 1);
    }
}
