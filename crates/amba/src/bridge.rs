//! The AHB-to-AHB bridge vocabulary shared by multi-bus platforms.
//!
//! A multi-bus platform splits the address space into interleaved windows,
//! each owned by one bus *shard*. A transaction whose address falls into a
//! remote shard's window completes locally against the bridge's slave port
//! (posted into the bridge request FIFO) and is later replayed on the
//! owning shard by the bridge's master port. [`ShardMap`] is the window
//! decode both sides agree on; [`BridgeCrossing`] is the record a shard's
//! bridge slave emits when a transaction leaves the shard; [`ReplayStats`]
//! counts the work a shard's bridge master replayed on behalf of remote
//! shards, so platform-level aggregation can count every transaction
//! exactly once.
//!
//! The types live here (not in the multi-bus crate) because both bus
//! backends produce and consume them at their ports, exactly like the rest
//! of the transaction vocabulary.

use crate::ids::Addr;
use crate::txn::Transaction;
use simkern::time::Cycle;

/// The interleaved shard-window decode of a multi-bus platform.
///
/// The address space is divided into `1 << window_shift`-byte windows and
/// window `w` is owned by shard `w % shards`. Both the local bridge slave
/// (deciding which transactions leave the shard) and the platform router
/// (deciding which shard a crossing lands on) evaluate the same map, so a
/// crossing can never be mis-routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    /// Log2 of the window size in bytes.
    pub window_shift: u32,
    /// Number of bus shards the windows are interleaved over.
    pub shards: u8,
}

impl ShardMap {
    /// Creates a map over `shards` shards with `1 << window_shift`-byte
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or the shift leaves no windows.
    #[must_use]
    pub fn new(window_shift: u32, shards: u8) -> Self {
        assert!(shards >= 1, "a platform needs at least one shard");
        assert!(window_shift < 32, "window shift must leave windows");
        ShardMap {
            window_shift,
            shards,
        }
    }

    /// The shard owning `addr`.
    #[must_use]
    pub fn owner(&self, addr: Addr) -> u8 {
        ((addr.value() >> self.window_shift) % u32::from(self.shards)) as u8
    }

    /// Whether `addr` lies outside the window set of shard `own` (and a
    /// transaction to it must cross the bridge).
    #[must_use]
    pub fn is_remote(&self, addr: Addr, own: u8) -> bool {
        self.owner(addr) != own
    }
}

/// The bridge attachment of one bus shard: how the shard recognizes
/// remote addresses (slave side) and which master identifier its bridge
/// replay port uses (master side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgePort {
    /// The platform-wide shard-window decode.
    pub map: ShardMap,
    /// This shard's index in the map.
    pub own: u8,
    /// Wait states of the bridge slave window: cycles between a local
    /// transaction's address phase and its first data beat when it posts
    /// into the bridge FIFO (the bridge buffers, so no DRAM latency is
    /// paid locally).
    pub slave_cycles: u64,
    /// Master identifier of the shard's bridge replay port. Must not
    /// collide with the shard's trace masters or the write-buffer id.
    pub master: crate::ids::MasterId,
}

impl BridgePort {
    /// Turns a crossing's source transaction into the replay the bridge
    /// master issues on this shard: same address, direction, burst shape
    /// and size; the master id rewritten to the bridge port; posting
    /// disabled (the crossing was already posted on its source shard —
    /// posting the replay would count the write buffer twice); and a
    /// fresh identifier from the reserved replay namespace.
    ///
    /// Replay ids set bit 63 (no workload generator does — trace ids are
    /// namespaced `master << 32`, below 2^40), carry the shard index in
    /// bits 48..56 and the per-shard sequence number below, so they stay
    /// unique for 2^48 replays per shard. Both shard backends mint
    /// through this one method, which is what keeps a `sharded-tlm` and
    /// a `sharded-lt` run of the same platform id-for-id comparable.
    #[must_use]
    pub fn replay_txn(&self, source: Transaction, seq: u64) -> Transaction {
        debug_assert!(seq < 1 << 48, "replay sequence exhausted the id namespace");
        let mut txn = source;
        txn.master = self.master;
        txn.posted_ok = false;
        txn.id = crate::txn::TransactionId::new(
            (1 << 63) | (u64::from(self.own) << 48) | (seq & ((1 << 48) - 1)),
        );
        txn
    }
}

/// One transaction handed from a shard's bridge slave to the bridge
/// fabric: the original transaction plus the cycle its local (posting)
/// transfer completed — the instant it entered the bridge request FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeCrossing {
    /// Cycle the transaction finished its local transfer into the FIFO.
    pub issued_at: Cycle,
    /// The crossing transaction (still carrying its original master id;
    /// the remote replay rewrites it to the bridge master's id).
    pub txn: Transaction,
}

/// Work a shard's bridge master replayed on behalf of remote shards.
///
/// Every crossing is counted once at its *source* (the local posting
/// transfer); the remote replay is additional bus occupancy, not
/// additional completed work, so platform aggregation subtracts these
/// totals from the summed per-shard counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Replayed transactions.
    pub transactions: u64,
    /// Bytes the replays moved.
    pub bytes: u64,
    /// Data beats the replays transferred.
    pub data_beats: u64,
}

impl ReplayStats {
    /// Records one replayed transaction.
    pub fn record(&mut self, txn: &Transaction) {
        self.transactions += 1;
        self.bytes += u64::from(txn.bytes());
        self.data_beats += u64::from(txn.beats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BurstKind;
    use crate::ids::MasterId;
    use crate::signal::HSize;
    use crate::txn::TransferDirection;

    #[test]
    fn windows_interleave_over_the_shards() {
        let map = ShardMap::new(24, 4);
        assert_eq!(map.owner(Addr::new(0x0000_0000)), 0);
        assert_eq!(map.owner(Addr::new(0x0100_0000)), 1);
        assert_eq!(map.owner(Addr::new(0x0200_0000)), 2);
        assert_eq!(map.owner(Addr::new(0x0300_0000)), 3);
        assert_eq!(map.owner(Addr::new(0x0400_0000)), 0);
        assert!(map.is_remote(Addr::new(0x0100_0000), 0));
        assert!(!map.is_remote(Addr::new(0x0400_0000), 0));
    }

    #[test]
    fn single_shard_map_owns_everything() {
        let map = ShardMap::new(24, 1);
        for addr in [0u32, 0x2000_0000, 0xFFFF_FFFF] {
            assert_eq!(map.owner(Addr::new(addr)), 0);
            assert!(!map.is_remote(Addr::new(addr), 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panic() {
        let _ = ShardMap::new(24, 0);
    }

    #[test]
    fn replay_transactions_are_rewritten_and_uniquely_namespaced() {
        let port = BridgePort {
            map: ShardMap::new(24, 4),
            own: 3,
            slave_cycles: 2,
            master: MasterId::new(252),
        };
        let source = Transaction::new(
            MasterId::new(7),
            Addr::new(0x0100_0000),
            TransferDirection::Write,
            BurstKind::Incr8,
            HSize::Word,
        )
        .with_posted(true);
        let replay = port.replay_txn(source, 41);
        assert_eq!(replay.master, MasterId::new(252));
        assert!(!replay.posted_ok, "replays are demand transfers");
        assert_eq!(replay.addr, source.addr);
        assert_eq!(replay.beats(), source.beats());
        // Bit 63 marks the replay namespace; shard and sequence follow.
        assert_eq!(replay.id.value(), (1 << 63) | (3 << 48) | 41);
        let other_shard = BridgePort { own: 2, ..port };
        assert_ne!(other_shard.replay_txn(source, 41).id, replay.id);
    }

    #[test]
    fn replay_stats_accumulate_transaction_totals() {
        let txn = Transaction::new(
            MasterId::new(3),
            Addr::new(0x2000_0000),
            TransferDirection::Write,
            BurstKind::Incr8,
            HSize::Word,
        );
        let mut stats = ReplayStats::default();
        stats.record(&txn);
        stats.record(&txn);
        assert_eq!(stats.transactions, 2);
        assert_eq!(stats.data_beats, 16);
        assert_eq!(stats.bytes, u64::from(txn.bytes()) * 2);
    }
}
