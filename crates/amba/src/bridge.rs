//! The AHB-to-AHB bridge vocabulary shared by multi-bus platforms.
//!
//! A multi-bus platform splits the address space into windows, each owned
//! by one bus *shard*. A transaction whose address falls into a remote
//! shard's window leaves the shard through the bridge's slave port and is
//! later replayed on the owning shard by that shard's bridge master port.
//! [`WindowMap`] is the window decode both sides agree on — interleaved
//! round-robin ownership ([`ShardMap`], the classic layout) or an explicit
//! per-window owner table for non-uniform platforms; [`BridgeCrossing`] is
//! the record a shard's bridge emits when a transaction (or a read
//! response) leaves the shard, with [`CrossingLeg`] saying which leg of
//! the protocol it is; [`ReplayStats`] counts the work a shard's bridge
//! master replayed on behalf of remote shards, so platform-level
//! aggregation can count every transaction exactly once.
//!
//! # Posted and non-posted crossings
//!
//! Writes always cross *posted*: the local transfer completes into the
//! bridge request FIFO and the replay runs asynchronously on the owning
//! shard. Reads cross posted by default (split-transaction prefetch
//! semantics), but a bridge port configured with `posted_reads == false`
//! turns them into **non-posted** crossings: the request leg crosses, the
//! issuing master stalls, the read is replayed on the owning shard, and a
//! [`CrossingLeg::ReadResponse`] crosses back to retire the stalled
//! transfer — the bridge carries traffic in both directions.
//!
//! The types live here (not in the multi-bus crate) because both bus
//! backends produce and consume them at their ports, exactly like the rest
//! of the transaction vocabulary.

use std::sync::Arc;

use crate::ids::Addr;
use crate::txn::Transaction;
use simkern::time::Cycle;

/// The interleaved shard-window decode of a multi-bus platform.
///
/// The address space is divided into `1 << window_shift`-byte windows and
/// window `w` is owned by shard `w % shards`. This is the uniform special
/// case of [`WindowMap`]; keep using it where the interleave is all a
/// platform needs — it is `Copy` and two machine operations per decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    /// Log2 of the window size in bytes.
    pub window_shift: u32,
    /// Number of bus shards the windows are interleaved over.
    pub shards: u8,
}

impl ShardMap {
    /// Creates a map over `shards` shards with `1 << window_shift`-byte
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or the shift leaves no windows.
    #[must_use]
    pub fn new(window_shift: u32, shards: u8) -> Self {
        assert!(shards >= 1, "a platform needs at least one shard");
        assert!(window_shift < 32, "window shift must leave windows");
        ShardMap {
            window_shift,
            shards,
        }
    }

    /// The shard owning `addr`.
    #[must_use]
    pub fn owner(&self, addr: Addr) -> u8 {
        ((addr.value() >> self.window_shift) % u32::from(self.shards)) as u8
    }

    /// Whether `addr` lies outside the window set of shard `own` (and a
    /// transaction to it must cross the bridge).
    #[must_use]
    pub fn is_remote(&self, addr: Addr, own: u8) -> bool {
        self.owner(addr) != own
    }
}

/// Smallest explicit-table window shift [`WindowMap::explicit`] accepts:
/// the owner table covers the whole 32-bit address space, so the shift
/// bounds its size (`1 << (32 - shift)` entries; shift 16 → 65536).
pub const MIN_EXPLICIT_WINDOW_SHIFT: u32 = 16;

/// The generalized shard-window decode: every address is owned by exactly
/// one shard, either by round-robin interleave or by an explicit
/// per-window owner table (non-uniform ownership — a hot shard may own
/// three windows for every one of its neighbour's).
///
/// Both the local bridge slave (deciding which transactions leave the
/// shard) and the platform router (deciding which shard a crossing lands
/// on) evaluate the same map, so a crossing can never be mis-routed.
/// Cloning is cheap: the explicit owner table is shared (`Arc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowMap {
    window_shift: u32,
    shards: u8,
    /// `None` → interleaved (`window % shards`); `Some` → explicit owner
    /// per window, covering the full address space.
    owners: Option<Arc<[u8]>>,
}

impl WindowMap {
    /// The interleaved map: window `w` is owned by shard `w % shards`
    /// (exactly [`ShardMap`] semantics).
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or the shift leaves no windows.
    #[must_use]
    pub fn interleaved(window_shift: u32, shards: u8) -> Self {
        let map = ShardMap::new(window_shift, shards);
        WindowMap {
            window_shift: map.window_shift,
            shards: map.shards,
            owners: None,
        }
    }

    /// An explicit map: `owners[w]` is the shard owning window `w`. The
    /// table must cover the full 32-bit address space — exactly
    /// `1 << (32 - window_shift)` entries — which is also what makes
    /// "every address has exactly one owner, no overlap" true by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics when the shift is outside
    /// `[`[`MIN_EXPLICIT_WINDOW_SHIFT`]`, 32)`, when the table length
    /// does not match the shift, or when an owner index reaches `shards`.
    #[must_use]
    pub fn explicit(window_shift: u32, shards: u8, owners: Vec<u8>) -> Self {
        assert!(shards >= 1, "a platform needs at least one shard");
        assert!(
            (MIN_EXPLICIT_WINDOW_SHIFT..32).contains(&window_shift),
            "explicit window shift must lie in [{MIN_EXPLICIT_WINDOW_SHIFT}, 32)"
        );
        let windows = 1usize << (32 - window_shift);
        assert_eq!(
            owners.len(),
            windows,
            "owner table must cover the full address space ({windows} windows)"
        );
        assert!(
            owners.iter().all(|&owner| owner < shards),
            "window owner index out of range"
        );
        WindowMap {
            window_shift,
            shards,
            owners: Some(owners.into()),
        }
    }

    /// Log2 of the window size in bytes.
    #[must_use]
    pub fn window_shift(&self) -> u32 {
        self.window_shift
    }

    /// Number of shards the map decodes to.
    #[must_use]
    pub fn shards(&self) -> u8 {
        self.shards
    }

    /// `true` when ownership is the uniform round-robin interleave.
    #[must_use]
    pub fn is_interleaved(&self) -> bool {
        self.owners.is_none()
    }

    /// The shard owning `addr`.
    #[must_use]
    #[inline]
    pub fn owner(&self, addr: Addr) -> u8 {
        let window = addr.value() >> self.window_shift;
        match &self.owners {
            None => (window % u32::from(self.shards)) as u8,
            Some(owners) => owners[window as usize],
        }
    }

    /// Whether `addr` lies outside the window set of shard `own` (and a
    /// transaction to it must cross the bridge).
    #[must_use]
    #[inline]
    pub fn is_remote(&self, addr: Addr, own: u8) -> bool {
        self.owner(addr) != own
    }
}

impl From<ShardMap> for WindowMap {
    fn from(map: ShardMap) -> Self {
        WindowMap::interleaved(map.window_shift, map.shards)
    }
}

/// The bridge attachment of one bus shard: how the shard recognizes
/// remote addresses (slave side), which master identifier its bridge
/// replay port uses (master side), and whether remote reads cross posted
/// or stall the issuing master until the response returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgePort {
    /// The platform-wide shard-window decode.
    pub map: WindowMap,
    /// This shard's index in the map.
    pub own: u8,
    /// Wait states of the bridge slave window: cycles between a local
    /// transaction's address phase and its first data beat when it posts
    /// into the bridge FIFO (the bridge buffers, so no DRAM latency is
    /// paid locally).
    pub slave_cycles: u64,
    /// Master identifier of the shard's bridge replay port. Must not
    /// collide with the shard's trace masters or the write-buffer id.
    pub master: crate::ids::MasterId,
    /// `true` → remote reads complete locally against the bridge slave
    /// like writes do (split-transaction prefetch semantics, no response
    /// traffic — the classic posted bridge). `false` → remote reads are
    /// **non-posted**: the request leg crosses, the issuing master stalls,
    /// and a [`CrossingLeg::ReadResponse`] crosses back to retire it.
    pub posted_reads: bool,
}

impl BridgePort {
    /// Turns a crossing's source transaction into the replay the bridge
    /// master issues on this shard: same address, direction, burst shape
    /// and size; the master id rewritten to the bridge port; posting
    /// disabled (the crossing was already posted on its source shard —
    /// posting the replay would count the write buffer twice); and a
    /// fresh identifier from the reserved replay namespace.
    ///
    /// Replay ids set bit 63 (no workload generator does — trace ids are
    /// namespaced `master << 32`, below 2^40), carry the shard index in
    /// bits 48..56 and the *source transaction's* id below. A source
    /// transaction crosses into a given shard at most once (routing is a
    /// pure function of its address), so the replay id is unique — and,
    /// unlike a per-shard injection counter, independent of the order
    /// deliveries reach this shard in. That order independence is what
    /// lets the adaptive-lookahead scheduler merge delivery batches
    /// without perturbing replay identity. Both shard backends mint
    /// through this one method, which is what keeps a `sharded-tlm` and
    /// a `sharded-lt` run of the same platform id-for-id comparable.
    #[must_use]
    pub fn replay_txn(&self, source: Transaction) -> Transaction {
        let seq = source.id.value();
        debug_assert!(seq < 1 << 48, "source id outside the replay namespace");
        let mut txn = source;
        txn.master = self.master;
        txn.posted_ok = false;
        txn.id = crate::txn::TransactionId::new(
            (1 << 63) | (u64::from(self.own) << 48) | (seq & ((1 << 48) - 1)),
        );
        txn
    }
}

/// Which leg of the bridge protocol a [`BridgeCrossing`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossingLeg {
    /// A posted request: replayed on the owning shard, no response. The
    /// source shard has already completed (and counted) the transfer.
    Posted,
    /// A non-posted read request from shard `origin`: replayed on the
    /// owning shard, which must return a [`CrossingLeg::ReadResponse`]
    /// once the replay completes. The source master is stalled until the
    /// response retires it; the transfer is counted at retirement.
    NonPostedRead {
        /// Shard the stalled master lives on (where the response goes).
        origin: u8,
    },
    /// The response leg of a non-posted read: carries the *original*
    /// transaction (source master id and transaction id intact) back to
    /// shard `origin`, where it retires the stalled transfer.
    ReadResponse {
        /// Shard the stalled master lives on.
        origin: u8,
    },
}

impl CrossingLeg {
    /// `true` for the two request legs (routed to the window owner).
    #[must_use]
    pub fn is_request(&self) -> bool {
        !matches!(self, CrossingLeg::ReadResponse { .. })
    }
}

/// One transaction handed from a shard's bridge to the bridge fabric: the
/// transaction, the cycle it entered the link (local transfer completed
/// into the request FIFO, or the replay whose response this is
/// completed), and which protocol leg it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeCrossing {
    /// Cycle the crossing entered the bridge FIFO on its source shard.
    pub issued_at: Cycle,
    /// The crossing transaction. Request legs still carry the original
    /// master id (the remote replay rewrites it to the bridge master);
    /// the response leg carries the original transaction unchanged.
    pub txn: Transaction,
    /// Which protocol leg this crossing is.
    pub leg: CrossingLeg,
}

impl BridgeCrossing {
    /// A posted request crossing (the PR-4 bridge's only traffic).
    #[must_use]
    pub fn posted(issued_at: Cycle, txn: Transaction) -> Self {
        BridgeCrossing {
            issued_at,
            txn,
            leg: CrossingLeg::Posted,
        }
    }
}

/// Work a shard's bridge master replayed on behalf of remote shards.
///
/// Every crossing is counted once at its *source* (the local posting
/// transfer, or the response retirement of a non-posted read); the remote
/// replay is additional bus occupancy, not additional completed work, so
/// platform aggregation subtracts these totals from the summed per-shard
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Replayed transactions.
    pub transactions: u64,
    /// Bytes the replays moved.
    pub bytes: u64,
    /// Data beats the replays transferred.
    pub data_beats: u64,
}

impl ReplayStats {
    /// Records one replayed transaction.
    pub fn record(&mut self, txn: &Transaction) {
        self.transactions += 1;
        self.bytes += u64::from(txn.bytes());
        self.data_beats += u64::from(txn.beats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BurstKind;
    use crate::ids::MasterId;
    use crate::signal::HSize;
    use crate::txn::TransferDirection;

    fn port() -> BridgePort {
        BridgePort {
            map: WindowMap::interleaved(24, 4),
            own: 3,
            slave_cycles: 2,
            master: MasterId::new(252),
            posted_reads: true,
        }
    }

    #[test]
    fn windows_interleave_over_the_shards() {
        let map = ShardMap::new(24, 4);
        assert_eq!(map.owner(Addr::new(0x0000_0000)), 0);
        assert_eq!(map.owner(Addr::new(0x0100_0000)), 1);
        assert_eq!(map.owner(Addr::new(0x0200_0000)), 2);
        assert_eq!(map.owner(Addr::new(0x0300_0000)), 3);
        assert_eq!(map.owner(Addr::new(0x0400_0000)), 0);
        assert!(map.is_remote(Addr::new(0x0100_0000), 0));
        assert!(!map.is_remote(Addr::new(0x0400_0000), 0));
    }

    #[test]
    fn single_shard_map_owns_everything() {
        let map = ShardMap::new(24, 1);
        for addr in [0u32, 0x2000_0000, 0xFFFF_FFFF] {
            assert_eq!(map.owner(Addr::new(addr)), 0);
            assert!(!map.is_remote(Addr::new(addr), 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panic() {
        let _ = ShardMap::new(24, 0);
    }

    #[test]
    fn window_map_interleaved_matches_the_shard_map() {
        let shard_map = ShardMap::new(24, 4);
        let window_map = WindowMap::from(shard_map);
        assert!(window_map.is_interleaved());
        assert_eq!(window_map.shards(), 4);
        assert_eq!(window_map.window_shift(), 24);
        for addr in [0u32, 0x0100_0000, 0x1234_5678, 0xFFFF_FFFF] {
            let addr = Addr::new(addr);
            assert_eq!(window_map.owner(addr), shard_map.owner(addr));
            assert_eq!(window_map.is_remote(addr, 2), shard_map.is_remote(addr, 2));
        }
    }

    #[test]
    fn explicit_window_map_follows_its_owner_table() {
        // 24-bit windows → 256 entries: shard 1 owns every fourth window,
        // shard 0 the other three — non-uniform 3:1 ownership.
        let owners: Vec<u8> = (0..256).map(|w| u8::from(w % 4 == 3)).collect();
        let map = WindowMap::explicit(24, 2, owners);
        assert!(!map.is_interleaved());
        assert_eq!(map.owner(Addr::new(0x0000_0000)), 0);
        assert_eq!(map.owner(Addr::new(0x0200_0000)), 0);
        assert_eq!(map.owner(Addr::new(0x0300_0000)), 1);
        assert!(map.is_remote(Addr::new(0x0300_0000), 0));
        assert!(!map.is_remote(Addr::new(0x0700_0000), 1));
    }

    #[test]
    #[should_panic(expected = "full address space")]
    fn explicit_window_map_rejects_partial_coverage() {
        let _ = WindowMap::explicit(24, 2, vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "owner index out of range")]
    fn explicit_window_map_rejects_dangling_owners() {
        let _ = WindowMap::explicit(24, 2, vec![7; 256]);
    }

    #[test]
    fn replay_transactions_are_rewritten_and_uniquely_namespaced() {
        let port = port();
        let source = Transaction::new(
            MasterId::new(7),
            Addr::new(0x0100_0000),
            TransferDirection::Write,
            BurstKind::Incr8,
            HSize::Word,
        )
        .with_posted(true)
        .with_id(crate::txn::TransactionId::new(41));
        let replay = port.replay_txn(source);
        assert_eq!(replay.master, MasterId::new(252));
        assert!(!replay.posted_ok, "replays are demand transfers");
        assert_eq!(replay.addr, source.addr);
        assert_eq!(replay.beats(), source.beats());
        // Bit 63 marks the replay namespace; shard index and the source
        // transaction's id follow.
        assert_eq!(replay.id.value(), (1 << 63) | (3 << 48) | 41);
        let other_shard = BridgePort {
            own: 2,
            ..port.clone()
        };
        assert_ne!(other_shard.replay_txn(source).id, replay.id);
    }

    #[test]
    fn crossing_legs_distinguish_requests_from_responses() {
        assert!(CrossingLeg::Posted.is_request());
        assert!(CrossingLeg::NonPostedRead { origin: 1 }.is_request());
        assert!(!CrossingLeg::ReadResponse { origin: 1 }.is_request());
        let txn = Transaction::new(
            MasterId::new(3),
            Addr::new(0x2000_0000),
            TransferDirection::Read,
            BurstKind::Incr4,
            HSize::Word,
        );
        let crossing = BridgeCrossing::posted(Cycle::new(10), txn);
        assert_eq!(crossing.leg, CrossingLeg::Posted);
        assert_eq!(crossing.issued_at, Cycle::new(10));
    }

    #[test]
    fn replay_stats_accumulate_transaction_totals() {
        let txn = Transaction::new(
            MasterId::new(3),
            Addr::new(0x2000_0000),
            TransferDirection::Write,
            BurstKind::Incr8,
            HSize::Word,
        );
        let mut stats = ReplayStats::default();
        stats.record(&txn);
        stats.record(&txn);
        assert_eq!(stats.transactions, 2);
        assert_eq!(stats.data_beats, 16);
        assert_eq!(stats.bytes, u64::from(txn.bytes()) * 2);
    }
}
