//! AHB+ quality-of-service extension registers.
//!
//! Plain AMBA 2.0 "cannot guarantee master's QoS" (paper §2). AHB+ adds
//! internal registers that store, per master, a *QoS objective value* and
//! the master's class (real-time or non-real-time). The arbiter consults
//! these registers: a real-time master whose objective is close to being
//! violated is boosted ahead of everything else.
//!
//! The objective value is interpreted as a **latency budget in bus cycles**:
//! the master expects each of its transactions to be granted within that
//! many cycles of the request. This is the natural reading of "QoS objective
//! value" for a latency-critical IP (e.g. a video scan-out engine) and it is
//! what the urgency filter of the arbitration chain uses.

use std::fmt;

use crate::ids::MasterId;

/// Real-time or non-real-time master classification (paper §2, §3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MasterClass {
    /// Latency-critical master with a QoS guarantee (e.g. display, video).
    RealTime,
    /// Best-effort master (e.g. CPU, general-purpose DMA).
    #[default]
    NonRealTime,
}

impl MasterClass {
    /// Returns `true` for real-time masters.
    #[must_use]
    pub const fn is_real_time(self) -> bool {
        matches!(self, MasterClass::RealTime)
    }
}

impl fmt::Display for MasterClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MasterClass::RealTime => write!(f, "real-time"),
            MasterClass::NonRealTime => write!(f, "non-real-time"),
        }
    }
}

/// Per-master QoS programming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosConfig {
    /// Master classification.
    pub class: MasterClass,
    /// Latency budget in bus cycles for real-time masters. For non-real-time
    /// masters the value is informational only.
    pub objective_cycles: u32,
    /// Fixed priority used as the final tie-break (lower value = higher
    /// priority), mirroring the fixed master priority of plain AHB.
    pub fixed_priority: u8,
}

impl QosConfig {
    /// A real-time master with the given latency budget.
    #[must_use]
    pub const fn real_time(objective_cycles: u32, fixed_priority: u8) -> Self {
        QosConfig {
            class: MasterClass::RealTime,
            objective_cycles,
            fixed_priority,
        }
    }

    /// A best-effort master.
    #[must_use]
    pub const fn non_real_time(fixed_priority: u8) -> Self {
        QosConfig {
            class: MasterClass::NonRealTime,
            objective_cycles: u32::MAX,
            fixed_priority,
        }
    }

    /// Returns `true` if a request outstanding for `waited` cycles is within
    /// `margin` cycles of violating the objective.
    #[must_use]
    pub fn is_urgent(&self, waited: u64, margin: u32) -> bool {
        if !self.class.is_real_time() {
            return false;
        }
        let budget = u64::from(self.objective_cycles);
        waited + u64::from(margin) >= budget
    }

    /// Returns `true` if a request outstanding for `waited` cycles has
    /// already violated the objective.
    #[must_use]
    pub fn is_violated(&self, waited: u64) -> bool {
        self.class.is_real_time() && waited > u64::from(self.objective_cycles)
    }
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig::non_real_time(15)
    }
}

/// The AHB+ internal QoS register file: one [`QosConfig`] per master.
///
/// Lookups are on the arbitration hot path (once per pending request per
/// decision), so the file keeps a direct-indexed table per master id next
/// to the list of explicitly programmed masters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QosRegisterFile {
    entries: Vec<(MasterId, QosConfig)>,
    table: [QosConfig; 256],
}

impl Default for QosRegisterFile {
    fn default() -> Self {
        QosRegisterFile {
            entries: Vec::new(),
            table: [QosConfig::default(); 256],
        }
    }
}

impl QosRegisterFile {
    /// Creates an empty register file.
    #[must_use]
    pub fn new() -> Self {
        QosRegisterFile::default()
    }

    /// Programs (or reprograms) the registers for `master`.
    pub fn program(&mut self, master: MasterId, config: QosConfig) {
        if let Some(entry) = self.entries.iter_mut().find(|(m, _)| *m == master) {
            entry.1 = config;
        } else {
            self.entries.push((master, config));
        }
        self.table[master.index()] = config;
    }

    /// Reads the registers for `master`; unprogrammed masters read back the
    /// default non-real-time configuration, matching hardware reset values.
    #[must_use]
    pub fn lookup(&self, master: MasterId) -> QosConfig {
        self.table[master.index()]
    }

    /// Number of explicitly programmed masters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no master has been programmed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the programmed `(master, config)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MasterId, QosConfig)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_configs_flag_urgency() {
        let qos = QosConfig::real_time(100, 0);
        assert!(qos.class.is_real_time());
        assert!(!qos.is_urgent(10, 16));
        assert!(qos.is_urgent(90, 16));
        assert!(qos.is_urgent(200, 0));
        assert!(!qos.is_violated(100));
        assert!(qos.is_violated(101));
    }

    #[test]
    fn non_real_time_is_never_urgent() {
        let qos = QosConfig::non_real_time(5);
        assert!(!qos.is_urgent(u64::from(u32::MAX), 1000));
        assert!(!qos.is_violated(u64::from(u32::MAX)));
    }

    #[test]
    fn register_file_program_and_lookup() {
        let mut file = QosRegisterFile::new();
        assert!(file.is_empty());
        file.program(MasterId::new(0), QosConfig::real_time(64, 1));
        file.program(MasterId::new(2), QosConfig::non_real_time(9));
        assert_eq!(file.len(), 2);
        assert_eq!(file.lookup(MasterId::new(0)).objective_cycles, 64);
        assert_eq!(file.lookup(MasterId::new(2)).fixed_priority, 9);
        // Unprogrammed master reads back reset defaults.
        let default = file.lookup(MasterId::new(5));
        assert_eq!(default.class, MasterClass::NonRealTime);
    }

    #[test]
    fn reprogramming_overwrites() {
        let mut file = QosRegisterFile::new();
        file.program(MasterId::new(1), QosConfig::real_time(50, 0));
        file.program(MasterId::new(1), QosConfig::real_time(80, 0));
        assert_eq!(file.len(), 1);
        assert_eq!(file.lookup(MasterId::new(1)).objective_cycles, 80);
    }

    #[test]
    fn iter_yields_programmed_entries() {
        let mut file = QosRegisterFile::new();
        file.program(MasterId::new(0), QosConfig::real_time(10, 0));
        file.program(MasterId::new(1), QosConfig::non_real_time(3));
        let masters: Vec<MasterId> = file.iter().map(|(m, _)| m).collect();
        assert_eq!(masters, vec![MasterId::new(0), MasterId::new(1)]);
    }

    #[test]
    fn class_display() {
        assert_eq!(MasterClass::RealTime.to_string(), "real-time");
        assert_eq!(MasterClass::NonRealTime.to_string(), "non-real-time");
    }
}
