//! AMBA 2.0 AHB signal encodings.
//!
//! The paper's first modeling step (§3.1) is to re-define the signal-level
//! protocol as transaction-level ports. To do that faithfully the signal
//! vocabulary itself must exist: the pin-accurate model drives these
//! encodings on wires every cycle, while the transaction-level model only
//! uses them inside its transaction records. All encodings follow the AMBA
//! Specification rev 2.0.

use std::fmt;

/// `HTRANS[1:0]` — transfer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HTrans {
    /// No transfer is required (master holds the bus but is idle).
    #[default]
    Idle,
    /// Master is in the middle of a burst but cannot continue immediately.
    Busy,
    /// First transfer of a burst or a single transfer.
    NonSeq,
    /// Remaining transfers of a burst.
    Seq,
}

impl HTrans {
    /// Encodes to the 2-bit `HTRANS` value.
    #[must_use]
    pub const fn bits(self) -> u8 {
        match self {
            HTrans::Idle => 0b00,
            HTrans::Busy => 0b01,
            HTrans::NonSeq => 0b10,
            HTrans::Seq => 0b11,
        }
    }

    /// Decodes from the 2-bit `HTRANS` value.
    ///
    /// Only the two low bits are inspected.
    #[must_use]
    pub const fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => HTrans::Idle,
            0b01 => HTrans::Busy,
            0b10 => HTrans::NonSeq,
            _ => HTrans::Seq,
        }
    }

    /// Returns `true` for `NONSEQ` and `SEQ`, the encodings that actually
    /// transfer data.
    #[must_use]
    pub const fn is_active(self) -> bool {
        matches!(self, HTrans::NonSeq | HTrans::Seq)
    }
}

impl fmt::Display for HTrans {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            HTrans::Idle => "IDLE",
            HTrans::Busy => "BUSY",
            HTrans::NonSeq => "NONSEQ",
            HTrans::Seq => "SEQ",
        };
        write!(f, "{text}")
    }
}

/// `HBURST[2:0]` — burst kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HBurst {
    /// Single transfer.
    #[default]
    Single,
    /// Incrementing burst of unspecified length.
    Incr,
    /// 4-beat wrapping burst.
    Wrap4,
    /// 4-beat incrementing burst.
    Incr4,
    /// 8-beat wrapping burst.
    Wrap8,
    /// 8-beat incrementing burst.
    Incr8,
    /// 16-beat wrapping burst.
    Wrap16,
    /// 16-beat incrementing burst.
    Incr16,
}

impl HBurst {
    /// Encodes to the 3-bit `HBURST` value.
    #[must_use]
    pub const fn bits(self) -> u8 {
        match self {
            HBurst::Single => 0b000,
            HBurst::Incr => 0b001,
            HBurst::Wrap4 => 0b010,
            HBurst::Incr4 => 0b011,
            HBurst::Wrap8 => 0b100,
            HBurst::Incr8 => 0b101,
            HBurst::Wrap16 => 0b110,
            HBurst::Incr16 => 0b111,
        }
    }

    /// Decodes from the 3-bit `HBURST` value.
    #[must_use]
    pub const fn from_bits(bits: u8) -> Self {
        match bits & 0b111 {
            0b000 => HBurst::Single,
            0b001 => HBurst::Incr,
            0b010 => HBurst::Wrap4,
            0b011 => HBurst::Incr4,
            0b100 => HBurst::Wrap8,
            0b101 => HBurst::Incr8,
            0b110 => HBurst::Wrap16,
            _ => HBurst::Incr16,
        }
    }

    /// Number of beats in a fixed-length burst; `None` for `INCR` whose
    /// length is determined by the master de-asserting further transfers.
    #[must_use]
    pub const fn fixed_beats(self) -> Option<u32> {
        match self {
            HBurst::Single => Some(1),
            HBurst::Incr => None,
            HBurst::Wrap4 | HBurst::Incr4 => Some(4),
            HBurst::Wrap8 | HBurst::Incr8 => Some(8),
            HBurst::Wrap16 | HBurst::Incr16 => Some(16),
        }
    }

    /// Returns `true` for the wrapping variants.
    #[must_use]
    pub const fn is_wrapping(self) -> bool {
        matches!(self, HBurst::Wrap4 | HBurst::Wrap8 | HBurst::Wrap16)
    }
}

impl fmt::Display for HBurst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            HBurst::Single => "SINGLE",
            HBurst::Incr => "INCR",
            HBurst::Wrap4 => "WRAP4",
            HBurst::Incr4 => "INCR4",
            HBurst::Wrap8 => "WRAP8",
            HBurst::Incr8 => "INCR8",
            HBurst::Wrap16 => "WRAP16",
            HBurst::Incr16 => "INCR16",
        };
        write!(f, "{text}")
    }
}

/// `HSIZE[2:0]` — transfer size per beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HSize {
    /// 8-bit transfer.
    Byte,
    /// 16-bit transfer.
    Halfword,
    /// 32-bit transfer.
    #[default]
    Word,
    /// 64-bit transfer.
    Doubleword,
    /// 128-bit transfer (4-word line).
    Line4,
    /// 256-bit transfer (8-word line).
    Line8,
}

impl HSize {
    /// Encodes to the 3-bit `HSIZE` value.
    #[must_use]
    pub const fn bits(self) -> u8 {
        match self {
            HSize::Byte => 0b000,
            HSize::Halfword => 0b001,
            HSize::Word => 0b010,
            HSize::Doubleword => 0b011,
            HSize::Line4 => 0b100,
            HSize::Line8 => 0b101,
        }
    }

    /// Decodes from the 3-bit `HSIZE` value; encodings above `Line8`
    /// (512/1024-bit) are collapsed onto `Line8` because no modeled bus is
    /// wider than 256 bits.
    #[must_use]
    pub const fn from_bits(bits: u8) -> Self {
        match bits & 0b111 {
            0b000 => HSize::Byte,
            0b001 => HSize::Halfword,
            0b010 => HSize::Word,
            0b011 => HSize::Doubleword,
            0b100 => HSize::Line4,
            _ => HSize::Line8,
        }
    }

    /// Number of bytes moved per beat.
    #[must_use]
    pub const fn bytes(self) -> u32 {
        1 << self.bits()
    }
}

impl fmt::Display for HSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// `HRESP[1:0]` — slave response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HResp {
    /// Transfer completed successfully.
    #[default]
    Okay,
    /// Transfer failed.
    Error,
    /// Master must retry the transfer.
    Retry,
    /// Transfer is split; the slave will signal when it can complete.
    Split,
}

impl HResp {
    /// Encodes to the 2-bit `HRESP` value.
    #[must_use]
    pub const fn bits(self) -> u8 {
        match self {
            HResp::Okay => 0b00,
            HResp::Error => 0b01,
            HResp::Retry => 0b10,
            HResp::Split => 0b11,
        }
    }

    /// Decodes from the 2-bit `HRESP` value.
    #[must_use]
    pub const fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => HResp::Okay,
            0b01 => HResp::Error,
            0b10 => HResp::Retry,
            _ => HResp::Split,
        }
    }

    /// Returns `true` when the response indicates success.
    #[must_use]
    pub const fn is_okay(self) -> bool {
        matches!(self, HResp::Okay)
    }
}

impl fmt::Display for HResp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            HResp::Okay => "OKAY",
            HResp::Error => "ERROR",
            HResp::Retry => "RETRY",
            HResp::Split => "SPLIT",
        };
        write!(f, "{text}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htrans_round_trips_all_encodings() {
        for trans in [HTrans::Idle, HTrans::Busy, HTrans::NonSeq, HTrans::Seq] {
            assert_eq!(HTrans::from_bits(trans.bits()), trans);
        }
        assert_eq!(HTrans::from_bits(0b10), HTrans::NonSeq);
        assert_eq!(
            HTrans::from_bits(0b1110),
            HTrans::NonSeq,
            "upper bits ignored"
        );
    }

    #[test]
    fn htrans_activity() {
        assert!(HTrans::NonSeq.is_active());
        assert!(HTrans::Seq.is_active());
        assert!(!HTrans::Idle.is_active());
        assert!(!HTrans::Busy.is_active());
    }

    #[test]
    fn hburst_round_trips_and_beat_counts() {
        let all = [
            HBurst::Single,
            HBurst::Incr,
            HBurst::Wrap4,
            HBurst::Incr4,
            HBurst::Wrap8,
            HBurst::Incr8,
            HBurst::Wrap16,
            HBurst::Incr16,
        ];
        for burst in all {
            assert_eq!(HBurst::from_bits(burst.bits()), burst);
        }
        assert_eq!(HBurst::Single.fixed_beats(), Some(1));
        assert_eq!(HBurst::Incr.fixed_beats(), None);
        assert_eq!(HBurst::Incr16.fixed_beats(), Some(16));
        assert!(HBurst::Wrap8.is_wrapping());
        assert!(!HBurst::Incr8.is_wrapping());
    }

    #[test]
    fn hsize_bytes_match_encoding() {
        assert_eq!(HSize::Byte.bytes(), 1);
        assert_eq!(HSize::Halfword.bytes(), 2);
        assert_eq!(HSize::Word.bytes(), 4);
        assert_eq!(HSize::Doubleword.bytes(), 8);
        assert_eq!(HSize::Line8.bytes(), 32);
        for size in [
            HSize::Byte,
            HSize::Halfword,
            HSize::Word,
            HSize::Doubleword,
            HSize::Line4,
            HSize::Line8,
        ] {
            assert_eq!(HSize::from_bits(size.bits()), size);
        }
    }

    #[test]
    fn hresp_round_trips_and_okay() {
        for resp in [HResp::Okay, HResp::Error, HResp::Retry, HResp::Split] {
            assert_eq!(HResp::from_bits(resp.bits()), resp);
        }
        assert!(HResp::Okay.is_okay());
        assert!(!HResp::Retry.is_okay());
    }

    #[test]
    fn display_matches_spec_names() {
        assert_eq!(HTrans::NonSeq.to_string(), "NONSEQ");
        assert_eq!(HBurst::Wrap16.to_string(), "WRAP16");
        assert_eq!(HSize::Word.to_string(), "4B");
        assert_eq!(HResp::Split.to_string(), "SPLIT");
    }

    #[test]
    fn defaults_are_idle_okay_single_word() {
        assert_eq!(HTrans::default(), HTrans::Idle);
        assert_eq!(HBurst::default(), HBurst::Single);
        assert_eq!(HSize::default(), HSize::Word);
        assert_eq!(HResp::default(), HResp::Okay);
    }
}
