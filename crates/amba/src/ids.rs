//! Strongly-typed identifiers: masters, slaves and bus addresses.

use std::fmt;

/// Identifier of a bus master (CPU, DMA, video IP, the write buffer, ...).
///
/// AMBA 2.0 AHB supports up to 16 masters; AHB+ additionally lets the write
/// buffer act as a master, so the identifier space is kept generous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MasterId(u8);

impl MasterId {
    /// Creates a master identifier.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        MasterId(index)
    }

    /// Raw index of the master.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl From<u8> for MasterId {
    fn from(value: u8) -> Self {
        MasterId(value)
    }
}

/// Identifier of a bus slave (memory controller, SRAM, peripheral block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlaveId(u8);

impl SlaveId {
    /// Creates a slave identifier.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        SlaveId(index)
    }

    /// Raw index of the slave.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<u8> for SlaveId {
    fn from(value: u8) -> Self {
        SlaveId(value)
    }
}

/// A 32-bit AHB bus address (`HADDR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl Addr {
    /// Creates an address from its raw value.
    #[must_use]
    pub const fn new(value: u32) -> Self {
        Addr(value)
    }

    /// Raw 32-bit value.
    #[must_use]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns the address advanced by `bytes`, wrapping on 32-bit overflow.
    #[must_use]
    pub const fn wrapping_add(self, bytes: u32) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }

    /// Returns the address aligned *down* to `bytes` (which must be a power
    /// of two).
    #[must_use]
    pub const fn align_down(self, bytes: u32) -> Addr {
        Addr(self.0 & !(bytes - 1))
    }

    /// Returns `true` if the address is aligned to `bytes` (power of two).
    #[must_use]
    pub const fn is_aligned(self, bytes: u32) -> bool {
        self.0 & (bytes - 1) == 0
    }

    /// Returns the offset of this address within a naturally aligned block
    /// of `block` bytes (power of two).
    #[must_use]
    pub const fn offset_in(self, block: u32) -> u32 {
        self.0 & (block - 1)
    }

    /// The 1 KB block index of this address.
    ///
    /// AMBA 2.0 forbids bursts from crossing a 1 KB address boundary; the
    /// block index makes that rule cheap to check.
    #[must_use]
    pub const fn kib_block(self) -> u32 {
        self.0 >> 10
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for Addr {
    fn from(value: u32) -> Self {
        Addr(value)
    }
}

impl From<Addr> for u32 {
    fn from(value: Addr) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_and_slave_ids_display() {
        assert_eq!(MasterId::new(3).to_string(), "M3");
        assert_eq!(SlaveId::new(1).to_string(), "S1");
        assert_eq!(MasterId::from(2).index(), 2);
        assert_eq!(SlaveId::from(7).index(), 7);
    }

    #[test]
    fn addr_alignment_helpers() {
        let a = Addr::new(0x1000_0013);
        assert!(!a.is_aligned(4));
        assert_eq!(a.align_down(4), Addr::new(0x1000_0010));
        assert_eq!(a.offset_in(16), 0x3);
        assert!(Addr::new(0x1000_0010).is_aligned(16));
    }

    #[test]
    fn addr_wrapping_add_wraps() {
        let a = Addr::new(u32::MAX - 3);
        assert_eq!(a.wrapping_add(8), Addr::new(4));
    }

    #[test]
    fn kib_block_detects_boundaries() {
        assert_eq!(Addr::new(0x0000_03FF).kib_block(), 0);
        assert_eq!(Addr::new(0x0000_0400).kib_block(), 1);
        assert_ne!(
            Addr::new(0x0000_03FC).kib_block(),
            Addr::new(0x0000_0400).kib_block()
        );
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(0x2000_0000).to_string(), "0x20000000");
        assert_eq!(format!("{:x}", Addr::new(0xAB)), "ab");
    }

    #[test]
    fn addr_round_trips_u32() {
        let a: Addr = 0x8000_1234u32.into();
        assert_eq!(u32::from(a), 0x8000_1234);
    }
}
