//! The transaction vocabulary used at the transaction-level ports.
//!
//! Section 3.2 of the paper maps the signal-level handshake
//! (`HBUSREQ`/`HGRANT`, then `HADDR`/`HRDATA`/`HREADY`) onto port functions
//! such as `CheckGrant()` and `Read(addr, *data, *ctrl)`. [`Transaction`] is
//! the record those functions exchange: who is requesting, where, in which
//! direction, with which burst shape, plus issue/completion timestamps used
//! by the profiling layer.

use std::fmt;

use simkern::time::Cycle;

use crate::burst::{BurstKind, BurstSequence};
use crate::ids::{Addr, MasterId};
use crate::signal::{HResp, HSize};

/// Globally unique transaction identifier (per simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransactionId(u64);

impl TransactionId {
    /// Creates an identifier from a raw sequence number.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        TransactionId(value)
    }

    /// Raw sequence number.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The next identifier in sequence.
    #[must_use]
    pub const fn next(self) -> TransactionId {
        TransactionId(self.0 + 1)
    }
}

impl fmt::Display for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Direction of a transfer as seen from the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDirection {
    /// Master reads from the slave (`HWRITE` low).
    Read,
    /// Master writes to the slave (`HWRITE` high).
    Write,
}

impl TransferDirection {
    /// Returns `true` for writes.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, TransferDirection::Write)
    }
}

impl fmt::Display for TransferDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferDirection::Read => write!(f, "read"),
            TransferDirection::Write => write!(f, "write"),
        }
    }
}

/// One bus transaction (a complete burst) as exchanged at a TLM port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Identifier assigned by the issuing master or generator.
    pub id: TransactionId,
    /// The issuing master.
    pub master: MasterId,
    /// Starting address of the burst.
    pub addr: Addr,
    /// Read or write.
    pub direction: TransferDirection,
    /// Burst shape.
    pub burst: BurstKind,
    /// Per-beat transfer size.
    pub size: HSize,
    /// Cycle at which the master first requested the bus for this
    /// transaction (`HBUSREQ` assertion / port call time).
    pub issued_at: Cycle,
    /// Whether the issuing master may tolerate posting this write into the
    /// AHB+ write buffer. Reads are never posted.
    pub posted_ok: bool,
}

impl Transaction {
    /// Creates a transaction with identifier 0 issued at cycle 0.
    ///
    /// Generators typically fill in [`Transaction::id`] and
    /// [`Transaction::issued_at`] afterwards via [`Transaction::with_id`]
    /// and [`Transaction::issued`].
    #[must_use]
    pub fn new(
        master: MasterId,
        addr: Addr,
        direction: TransferDirection,
        burst: BurstKind,
        size: HSize,
    ) -> Self {
        Transaction {
            id: TransactionId::new(0),
            master,
            addr,
            direction,
            burst,
            size,
            issued_at: Cycle::ZERO,
            posted_ok: direction.is_write(),
        }
    }

    /// Returns the same transaction with a different identifier.
    #[must_use]
    pub fn with_id(mut self, id: TransactionId) -> Self {
        self.id = id;
        self
    }

    /// Returns the same transaction stamped with its issue time.
    #[must_use]
    pub fn issued(mut self, at: Cycle) -> Self {
        self.issued_at = at;
        self
    }

    /// Returns the same transaction with write-posting allowed or not.
    #[must_use]
    pub fn with_posted(mut self, posted_ok: bool) -> Self {
        self.posted_ok = posted_ok && self.direction.is_write();
        self
    }

    /// Number of beats in the burst.
    #[must_use]
    pub fn beats(&self) -> u32 {
        self.burst.beats()
    }

    /// Total bytes moved.
    #[must_use]
    pub fn bytes(&self) -> u32 {
        self.beats() * self.size.bytes()
    }

    /// Returns `true` for writes.
    #[must_use]
    pub fn is_write(&self) -> bool {
        self.direction.is_write()
    }

    /// The per-beat address sequence of this transaction.
    #[must_use]
    pub fn beat_addresses(&self) -> BurstSequence {
        BurstSequence::new(self.addr, self.burst, self.size)
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} beats of {} at {}",
            self.id,
            self.master,
            self.direction,
            self.beats(),
            self.size,
            self.addr
        )
    }
}

/// Completion record returned by the bus for one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The completed transaction.
    pub id: TransactionId,
    /// The issuing master.
    pub master: MasterId,
    /// Final slave response.
    pub response: HResp,
    /// Cycle at which the bus was granted for the first beat.
    pub granted_at: Cycle,
    /// Cycle at which the last beat's data phase finished.
    pub completed_at: Cycle,
    /// Cycle at which the master issued the request.
    pub issued_at: Cycle,
    /// Total bytes transferred.
    pub bytes: u32,
    /// Whether the transaction was served out of the write buffer
    /// (i.e. posted) rather than directly by the issuing master.
    pub via_write_buffer: bool,
}

impl Completion {
    /// Latency from request to full completion.
    #[must_use]
    pub fn total_latency(&self) -> u64 {
        self.completed_at.saturating_since(self.issued_at).value()
    }

    /// Cycles spent waiting for a grant.
    #[must_use]
    pub fn grant_latency(&self) -> u64 {
        self.granted_at.saturating_since(self.issued_at).value()
    }

    /// Cycles spent actually transferring data (address + data phases).
    #[must_use]
    pub fn transfer_cycles(&self) -> u64 {
        self.completed_at.saturating_since(self.granted_at).value()
    }
}

/// Handle to a [`Transaction`] owned by a [`TxnArena`].
///
/// Handles are plain `Copy` indices: cheap to pass through the arbiter, the
/// write buffer and the DDR-controller path without cloning the transaction
/// record. A handle is only meaningful together with the arena that issued
/// it; see the arena's ownership rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnHandle(u32);

impl TxnHandle {
    /// Raw slot index (stable for the lifetime of the allocation).
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// A pool of in-flight [`Transaction`] records with O(1) allocate/release
/// and slot reuse — the zero-allocation backbone of the TLM hot path.
///
/// # Ownership rules
///
/// * Exactly one owner per live handle: the component that currently holds
///   responsibility for the transaction (a master port while the request is
///   pending, the write buffer after it absorbs a posted write, the bus
///   while the data phase runs).
/// * The owner — and only the owner — must either pass the handle on or
///   [`TxnArena::release`] it after the transaction completes. Releasing
///   returns the slot to the free list; the handle must not be used again.
/// * Reads through [`TxnArena::get`] are fine from anywhere while the
///   handle is live (the arbiter and DDR path do this), but only the owner
///   may release.
///
/// Slots are recycled LIFO, so a steady-state simulation allocates only
/// during its warm-up transient (the high-water mark of concurrently
/// in-flight transactions).
#[derive(Debug, Clone, Default)]
pub struct TxnArena {
    slots: Vec<Transaction>,
    free: Vec<u32>,
    live: usize,
}

impl TxnArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        TxnArena::default()
    }

    /// Creates an arena with room for `capacity` in-flight transactions
    /// before it has to grow.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TxnArena {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
        }
    }

    /// Moves `txn` into the pool and returns its handle.
    pub fn alloc(&mut self, txn: Transaction) -> TxnHandle {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            self.slots[index as usize] = txn;
            TxnHandle(index)
        } else {
            let index = u32::try_from(self.slots.len()).expect("transaction arena overflow");
            self.slots.push(txn);
            TxnHandle(index)
        }
    }

    /// Reads a pooled transaction.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not come from this arena.
    #[must_use]
    pub fn get(&self, handle: TxnHandle) -> &Transaction {
        &self.slots[handle.0 as usize]
    }

    /// Mutable access to a pooled transaction (for stamping issue times).
    pub fn get_mut(&mut self, handle: TxnHandle) -> &mut Transaction {
        &mut self.slots[handle.0 as usize]
    }

    /// Returns a completed (or cancelled) transaction's slot to the pool.
    ///
    /// Only the handle's current owner may call this, and the handle must
    /// not be used afterwards.
    pub fn release(&mut self, handle: TxnHandle) {
        debug_assert!(
            !self.free.contains(&handle.0),
            "double release of transaction slot {}",
            handle.0
        );
        self.free.push(handle.0);
        self.live -= 1;
    }

    /// Number of live (allocated, not yet released) transactions.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever created — the high-water mark of concurrency.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::HSize;

    fn sample_txn() -> Transaction {
        Transaction::new(
            MasterId::new(1),
            Addr::new(0x2000_0000),
            TransferDirection::Write,
            BurstKind::Incr8,
            HSize::Word,
        )
    }

    #[test]
    fn transaction_geometry() {
        let txn = sample_txn();
        assert_eq!(txn.beats(), 8);
        assert_eq!(txn.bytes(), 32);
        assert!(txn.is_write());
        assert_eq!(txn.beat_addresses().count(), 8);
    }

    #[test]
    fn builder_style_helpers() {
        let txn = sample_txn()
            .with_id(TransactionId::new(42))
            .issued(Cycle::new(100))
            .with_posted(true);
        assert_eq!(txn.id.value(), 42);
        assert_eq!(txn.issued_at, Cycle::new(100));
        assert!(txn.posted_ok);
    }

    #[test]
    fn reads_are_never_posted() {
        let txn = Transaction::new(
            MasterId::new(0),
            Addr::new(0),
            TransferDirection::Read,
            BurstKind::Single,
            HSize::Word,
        )
        .with_posted(true);
        assert!(!txn.posted_ok);
    }

    #[test]
    fn transaction_id_sequence() {
        let id = TransactionId::new(7);
        assert_eq!(id.next().value(), 8);
        assert_eq!(id.to_string(), "T7");
    }

    #[test]
    fn completion_latency_accounting() {
        let completion = Completion {
            id: TransactionId::new(1),
            master: MasterId::new(0),
            response: HResp::Okay,
            granted_at: Cycle::new(15),
            completed_at: Cycle::new(40),
            issued_at: Cycle::new(10),
            bytes: 64,
            via_write_buffer: false,
        };
        assert_eq!(completion.total_latency(), 30);
        assert_eq!(completion.grant_latency(), 5);
        assert_eq!(completion.transfer_cycles(), 25);
    }

    #[test]
    fn display_mentions_master_and_direction() {
        let text = sample_txn().to_string();
        assert!(text.contains("M1"));
        assert!(text.contains("write"));
        assert!(text.contains("8 beats"));
    }

    #[test]
    fn arena_allocates_reads_and_releases() {
        let mut arena = TxnArena::new();
        let a = arena.alloc(sample_txn().with_id(TransactionId::new(1)));
        let b = arena.alloc(sample_txn().with_id(TransactionId::new(2)));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).id.value(), 1);
        assert_eq!(arena.get(b).id.value(), 2);
        arena.get_mut(a).issued_at = Cycle::new(77);
        assert_eq!(arena.get(a).issued_at, Cycle::new(77));
        arena.release(a);
        assert_eq!(arena.live(), 1);
    }

    #[test]
    fn arena_recycles_slots_without_growing() {
        let mut arena = TxnArena::with_capacity(4);
        let mut handles = Vec::new();
        for i in 0..4 {
            handles.push(arena.alloc(sample_txn().with_id(TransactionId::new(i))));
        }
        let high_water = arena.capacity();
        for _ in 0..100 {
            let h = handles.pop().unwrap();
            arena.release(h);
            handles.push(arena.alloc(sample_txn()));
        }
        assert_eq!(arena.capacity(), high_water, "steady state must not grow");
        assert_eq!(arena.live(), 4);
    }
}
