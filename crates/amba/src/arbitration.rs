//! The AHB+ arbitration filter chain.
//!
//! The AHB+ arbiter implements "seven arbitration filters ... always
//! activated without the consideration of master / slave combinations"
//! (paper §3.3) and each algorithm can be switched on and off as a model
//! parameter (paper §3.7). The internal Samsung specification of the exact
//! seven filters is not public, so this module reconstructs a filter chain
//! that realizes every mechanism the paper *does* name — QoS objective
//! registers, real-time / non-real-time master classes, the write buffer
//! acting as an extra master, and bank-affinity feedback over the Bus
//! Interface — as seven successive candidate-narrowing stages:
//!
//! 1. [`ArbitrationFilter::RequestMask`] — remove masters that are masked or
//!    defer to a master holding a locked sequence.
//! 2. [`ArbitrationFilter::WriteBufferUrgency`] — when the write buffer is
//!    close to overflowing, it must win so posted writes are not lost.
//! 3. [`ArbitrationFilter::QosUrgency`] — real-time masters whose QoS
//!    objective is about to be violated pre-empt everything else.
//! 4. [`ArbitrationFilter::RealTimeClass`] — otherwise real-time masters
//!    beat non-real-time masters.
//! 5. [`ArbitrationFilter::BankAffinity`] — prefer requests whose target
//!    DRAM bank is ready (idle or row already open), maximizing the benefit
//!    of bank interleaving.
//! 6. [`ArbitrationFilter::RoundRobin`] — rotate fairly among the survivors.
//! 7. [`ArbitrationFilter::FixedPriority`] — deterministic final tie-break
//!    (the plain-AHB fixed priority).
//!
//! The chain is implemented **once**, as a pure decision function over
//! [`RequestView`] snapshots, and is called by *both* the cycle-accurate
//! arbiter in `ahb-rtl` and the transaction-level arbiter in `ahb-tlm`.
//! The two models therefore pick the same winners and differ only in when
//! decisions are evaluated — which is exactly the abstraction the paper's
//! accuracy experiment quantifies.

use std::fmt;

use crate::ids::MasterId;
use crate::qos::QosConfig;

/// One stage of the AHB+ arbitration filter chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbitrationFilter {
    /// Stage 1: request masking / bus locking.
    RequestMask,
    /// Stage 2: write-buffer overflow protection.
    WriteBufferUrgency,
    /// Stage 3: QoS-objective urgency boost for real-time masters.
    QosUrgency,
    /// Stage 4: real-time class preference.
    RealTimeClass,
    /// Stage 5: DRAM bank-affinity preference (uses BI feedback).
    BankAffinity,
    /// Stage 6: round-robin fairness.
    RoundRobin,
    /// Stage 7: fixed-priority tie break.
    FixedPriority,
}

impl ArbitrationFilter {
    /// All seven filters in chain order.
    pub const ALL: [ArbitrationFilter; 7] = [
        ArbitrationFilter::RequestMask,
        ArbitrationFilter::WriteBufferUrgency,
        ArbitrationFilter::QosUrgency,
        ArbitrationFilter::RealTimeClass,
        ArbitrationFilter::BankAffinity,
        ArbitrationFilter::RoundRobin,
        ArbitrationFilter::FixedPriority,
    ];
}

impl fmt::Display for ArbitrationFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ArbitrationFilter::RequestMask => "request-mask",
            ArbitrationFilter::WriteBufferUrgency => "write-buffer-urgency",
            ArbitrationFilter::QosUrgency => "qos-urgency",
            ArbitrationFilter::RealTimeClass => "real-time-class",
            ArbitrationFilter::BankAffinity => "bank-affinity",
            ArbitrationFilter::RoundRobin => "round-robin",
            ArbitrationFilter::FixedPriority => "fixed-priority",
        };
        write!(f, "{text}")
    }
}

/// Static configuration of the arbiter (paper §3.7 lists "arbitration
/// algorithm on/off" among the model parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterConfig {
    /// Which filters are active. Disabled filters are skipped; the chain
    /// always ends with a deterministic fixed-priority pick even if the
    /// `FixedPriority` stage itself is disabled, so arbitration never
    /// returns an ambiguous result.
    pub enabled: Vec<ArbitrationFilter>,
    /// How many cycles before the QoS objective expires a request is
    /// considered urgent (stage 3).
    pub urgency_margin: u32,
    /// Write-buffer occupancy (in entries) at which stage 2 kicks in.
    pub write_buffer_high_watermark: usize,
}

impl ArbiterConfig {
    /// The full AHB+ configuration: all seven filters enabled.
    #[must_use]
    pub fn ahb_plus() -> Self {
        ArbiterConfig {
            enabled: ArbitrationFilter::ALL.to_vec(),
            urgency_margin: 16,
            write_buffer_high_watermark: 3,
        }
    }

    /// A plain AMBA 2.0 AHB fixed-priority arbiter (QoS, bank-affinity and
    /// fairness filters all disabled) — the baseline AHB+ improves upon.
    #[must_use]
    pub fn plain_ahb_fixed_priority() -> Self {
        ArbiterConfig {
            enabled: vec![
                ArbitrationFilter::RequestMask,
                ArbitrationFilter::FixedPriority,
            ],
            urgency_margin: 0,
            write_buffer_high_watermark: usize::MAX,
        }
    }

    /// Returns `true` if `filter` is enabled.
    #[must_use]
    pub fn is_enabled(&self, filter: ArbitrationFilter) -> bool {
        self.enabled.contains(&filter)
    }

    /// Returns a copy of the configuration with `filter` removed.
    #[must_use]
    pub fn without(mut self, filter: ArbitrationFilter) -> Self {
        self.enabled.retain(|f| *f != filter);
        self
    }

    /// Returns a copy of the configuration with `filter` added (if absent).
    #[must_use]
    pub fn with(mut self, filter: ArbitrationFilter) -> Self {
        if !self.enabled.contains(&filter) {
            self.enabled.push(filter);
            // keep canonical chain order
            self.enabled
                .sort_by_key(|f| ArbitrationFilter::ALL.iter().position(|x| x == f));
        }
        self
    }
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig::ahb_plus()
    }
}

/// Snapshot of one pending bus request as seen by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestView {
    /// Requesting master (the write buffer uses its own master id).
    pub master: MasterId,
    /// QoS registers of the requesting master.
    pub qos: QosConfig,
    /// Cycles the request has been outstanding.
    pub waited: u64,
    /// Request is masked out (e.g. the decoder reports an unmapped address).
    pub masked: bool,
    /// The master currently holds a locked sequence and must keep the bus.
    pub holds_lock: bool,
    /// This request comes from the AHB+ write buffer.
    pub is_write_buffer: bool,
    /// Current write-buffer occupancy (only meaningful for the buffer's own
    /// request).
    pub write_buffer_fill: usize,
    /// Target DRAM bank is ready (idle or row already open) according to the
    /// BI feedback.
    pub bank_ready: bool,
}

impl RequestView {
    /// Creates a plain, unmasked request snapshot.
    #[must_use]
    pub fn new(master: MasterId, qos: QosConfig, waited: u64) -> Self {
        RequestView {
            master,
            qos,
            waited,
            masked: false,
            holds_lock: false,
            is_write_buffer: false,
            write_buffer_fill: 0,
            bank_ready: false,
        }
    }
}

/// Why the winning request was selected (the first filter that isolated it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The granted master.
    pub master: MasterId,
    /// The filter stage that made the final selection.
    pub decided_by: ArbitrationFilter,
}

/// Stateful arbitration policy (the round-robin pointer is the only state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbitrationPolicy {
    config: ArbiterConfig,
    /// Bit `i` set ⇔ `ArbitrationFilter::ALL[i]` is enabled — precomputed so
    /// the per-decision loop does not scan the config's filter list.
    enabled_bits: u8,
    last_granted: Option<MasterId>,
}

impl ArbitrationPolicy {
    /// Creates a policy from a configuration.
    #[must_use]
    pub fn new(config: ArbiterConfig) -> Self {
        let mut enabled_bits = 0u8;
        for (i, filter) in ArbitrationFilter::ALL.iter().enumerate() {
            if config.is_enabled(*filter) {
                enabled_bits |= 1 << i;
            }
        }
        ArbitrationPolicy {
            config,
            enabled_bits,
            last_granted: None,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ArbiterConfig {
        &self.config
    }

    /// The master granted by the most recent decision, if any.
    #[must_use]
    pub fn last_granted(&self) -> Option<MasterId> {
        self.last_granted
    }

    /// Applies the filter chain to the pending requests and returns the
    /// winner, or `None` when no grantable request exists.
    ///
    /// The round-robin pointer is only advanced by
    /// [`ArbitrationPolicy::record_grant`], so `decide` itself is pure and
    /// can be called speculatively (the request-pipelining path does this).
    #[must_use]
    pub fn decide(&self, requests: &[RequestView]) -> Option<Decision> {
        // The candidate set is a bitmask over `requests`, so the whole
        // chain runs allocation-free (this is the innermost loop of both
        // bus models; the transaction-level engine calls it twice per
        // transaction).
        // Request sets wider than the 64-bit mask are legal (master ids
        // span 256) and take a cold, allocating path.
        if requests.len() > 64 {
            return self.decide_unbounded(requests);
        }
        // One pass over the candidates computes every per-request predicate
        // as a bitmask; the first five chain stages then reduce to plain
        // mask intersections.
        let mut mask: u64 = 0;
        let mut locked: u64 = 0;
        let mut wb_urgent: u64 = 0;
        let mut urgent: u64 = 0;
        let mut real_time: u64 = 0;
        let mut bank_ready: u64 = 0;
        for (i, request) in requests.iter().enumerate() {
            let bit = 1u64 << i;
            if request.masked {
                continue;
            }
            mask |= bit;
            if request.holds_lock {
                locked |= bit;
            }
            if request.is_write_buffer
                && request.write_buffer_fill >= self.config.write_buffer_high_watermark
            {
                wb_urgent |= bit;
            }
            if request
                .qos
                .is_urgent(request.waited, self.config.urgency_margin)
            {
                urgent |= bit;
            }
            if request.qos.class.is_real_time() {
                real_time |= bit;
            }
            if request.bank_ready {
                bank_ready |= bit;
            }
        }
        if mask == 0 {
            return None;
        }

        for (i, filter) in ArbitrationFilter::ALL.iter().enumerate() {
            if self.enabled_bits & (1 << i) == 0 {
                continue;
            }
            let narrowed = match filter {
                ArbitrationFilter::RequestMask => mask & locked,
                ArbitrationFilter::WriteBufferUrgency => mask & wb_urgent,
                ArbitrationFilter::QosUrgency => mask & urgent,
                ArbitrationFilter::RealTimeClass => mask & real_time,
                ArbitrationFilter::BankAffinity => mask & bank_ready,
                ArbitrationFilter::RoundRobin | ArbitrationFilter::FixedPriority => {
                    self.filter_mask(*filter, requests, mask)
                }
            };
            if narrowed != 0 {
                mask = narrowed;
            }
            if mask.count_ones() == 1 {
                let index = mask.trailing_zeros() as usize;
                return Some(Decision {
                    master: requests[index].master,
                    decided_by: *filter,
                });
            }
        }

        // Deterministic fallback: fixed priority, then master index.
        let index = min_by_key_mask(mask, |i| {
            (requests[i].qos.fixed_priority, requests[i].master.index())
        })?;
        Some(Decision {
            master: requests[index].master,
            decided_by: ArbitrationFilter::FixedPriority,
        })
    }

    /// Records that `master` was actually granted, advancing the
    /// round-robin pointer.
    pub fn record_grant(&mut self, master: MasterId) {
        self.last_granted = Some(master);
    }

    /// Cold path for more than 64 concurrent requests: identical chain
    /// semantics over an index vector instead of a bitmask.
    #[cold]
    fn decide_unbounded(&self, requests: &[RequestView]) -> Option<Decision> {
        let mut candidates: Vec<usize> = (0..requests.len())
            .filter(|&i| !requests[i].masked)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        for (bit, filter) in ArbitrationFilter::ALL.iter().enumerate() {
            if self.enabled_bits & (1 << bit) == 0 {
                continue;
            }
            let narrowed: Vec<usize> = match filter {
                ArbitrationFilter::RequestMask => candidates
                    .iter()
                    .copied()
                    .filter(|&i| requests[i].holds_lock)
                    .collect(),
                ArbitrationFilter::WriteBufferUrgency => candidates
                    .iter()
                    .copied()
                    .filter(|&i| {
                        requests[i].is_write_buffer
                            && requests[i].write_buffer_fill
                                >= self.config.write_buffer_high_watermark
                    })
                    .collect(),
                ArbitrationFilter::QosUrgency => candidates
                    .iter()
                    .copied()
                    .filter(|&i| {
                        requests[i]
                            .qos
                            .is_urgent(requests[i].waited, self.config.urgency_margin)
                    })
                    .collect(),
                ArbitrationFilter::RealTimeClass => candidates
                    .iter()
                    .copied()
                    .filter(|&i| requests[i].qos.class.is_real_time())
                    .collect(),
                ArbitrationFilter::BankAffinity => candidates
                    .iter()
                    .copied()
                    .filter(|&i| requests[i].bank_ready)
                    .collect(),
                ArbitrationFilter::RoundRobin => match self.last_granted {
                    None => candidates.clone(),
                    Some(last) => {
                        let distance = |m: MasterId| -> usize {
                            let span = 256usize;
                            (m.index() + span - last.index() - 1) % span
                        };
                        let best = candidates
                            .iter()
                            .map(|&i| distance(requests[i].master))
                            .min()
                            .unwrap_or(0);
                        candidates
                            .iter()
                            .copied()
                            .filter(|&i| distance(requests[i].master) == best)
                            .collect()
                    }
                },
                ArbitrationFilter::FixedPriority => {
                    let best = candidates
                        .iter()
                        .map(|&i| (requests[i].qos.fixed_priority, requests[i].master.index()))
                        .min();
                    candidates
                        .iter()
                        .copied()
                        .filter(|&i| {
                            Some((requests[i].qos.fixed_priority, requests[i].master.index()))
                                == best
                        })
                        .collect()
                }
            };
            if !narrowed.is_empty() {
                candidates = narrowed;
            }
            if candidates.len() == 1 {
                return Some(Decision {
                    master: requests[candidates[0]].master,
                    decided_by: *filter,
                });
            }
        }
        let index = candidates
            .iter()
            .copied()
            .min_by_key(|&i| (requests[i].qos.fixed_priority, requests[i].master.index()))?;
        Some(Decision {
            master: requests[index].master,
            decided_by: ArbitrationFilter::FixedPriority,
        })
    }

    /// Returns the subset of `mask` kept by `filter`, or 0 when the filter
    /// does not discriminate (the caller then keeps the previous set,
    /// preserving the "a filter that matches nobody is skipped" semantics
    /// of the original chain).
    fn filter_mask(&self, filter: ArbitrationFilter, requests: &[RequestView], mask: u64) -> u64 {
        match filter {
            ArbitrationFilter::RequestMask => {
                // Locked sequences own the bus outright.
                retain_mask(mask, |i| requests[i].holds_lock)
            }
            ArbitrationFilter::WriteBufferUrgency => retain_mask(mask, |i| {
                requests[i].is_write_buffer
                    && requests[i].write_buffer_fill >= self.config.write_buffer_high_watermark
            }),
            ArbitrationFilter::QosUrgency => retain_mask(mask, |i| {
                requests[i]
                    .qos
                    .is_urgent(requests[i].waited, self.config.urgency_margin)
            }),
            ArbitrationFilter::RealTimeClass => {
                retain_mask(mask, |i| requests[i].qos.class.is_real_time())
            }
            ArbitrationFilter::BankAffinity => retain_mask(mask, |i| requests[i].bank_ready),
            ArbitrationFilter::RoundRobin => {
                let Some(last) = self.last_granted else {
                    return mask;
                };
                // Pick the candidate with the smallest positive cyclic
                // distance from the last-granted master; ties are kept
                // set-valued to stay composable with later stages.
                let distance = |m: MasterId| -> usize {
                    let span = 256usize;
                    (m.index() + span - last.index() - 1) % span
                };
                match min_by_key_mask(mask, |i| distance(requests[i].master)) {
                    Some(best_index) => {
                        let best = distance(requests[best_index].master);
                        retain_mask(mask, |i| distance(requests[i].master) == best)
                    }
                    None => mask,
                }
            }
            ArbitrationFilter::FixedPriority => {
                match min_by_key_mask(mask, |i| {
                    (requests[i].qos.fixed_priority, requests[i].master.index())
                }) {
                    Some(best_index) => {
                        let best = (
                            requests[best_index].qos.fixed_priority,
                            requests[best_index].master.index(),
                        );
                        retain_mask(mask, |i| {
                            (requests[i].qos.fixed_priority, requests[i].master.index()) == best
                        })
                    }
                    None => mask,
                }
            }
        }
    }
}

/// Keeps the bits of `mask` whose index satisfies `keep`.
fn retain_mask(mask: u64, mut keep: impl FnMut(usize) -> bool) -> u64 {
    let mut out = 0u64;
    let mut rest = mask;
    while rest != 0 {
        let index = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        if keep(index) {
            out |= 1 << index;
        }
    }
    out
}

/// Index (within `mask`) minimizing `key`, or `None` for an empty mask.
fn min_by_key_mask<K: Ord>(mask: u64, mut key: impl FnMut(usize) -> K) -> Option<usize> {
    let mut best: Option<(K, usize)> = None;
    let mut rest = mask;
    while rest != 0 {
        let index = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let k = key(index);
        match &best {
            Some((bk, _)) if *bk <= k => {}
            _ => best = Some((k, index)),
        }
    }
    best.map(|(_, index)| index)
}

impl Default for ArbitrationPolicy {
    fn default() -> Self {
        ArbitrationPolicy::new(ArbiterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::QosConfig;

    fn nrt(master: u8, priority: u8, waited: u64) -> RequestView {
        RequestView::new(
            MasterId::new(master),
            QosConfig::non_real_time(priority),
            waited,
        )
    }

    #[test]
    fn wide_request_sets_use_the_unbounded_path_consistently() {
        // More than 64 pending requests is legal (master ids span 256); the
        // cold path must agree with the bitmask path on the winner.
        let policy = ArbitrationPolicy::new(ArbiterConfig::ahb_plus());
        let wide: Vec<RequestView> = (0u8..100)
            .map(|m| nrt(m, 10 - (m % 7), u64::from(m)))
            .collect();
        let wide_winner = policy.decide(&wide).expect("someone wins");
        // The same candidates restricted to 64 must elect the same master
        // when that master survives the cut.
        let narrow_winner = policy.decide(&wide[..64]).expect("someone wins");
        if wide
            .iter()
            .position(|r| r.master == wide_winner.master)
            .is_some_and(|p| p < 64)
        {
            assert_eq!(wide_winner.master, narrow_winner.master);
        }
        // A sole urgent real-time request wins regardless of width.
        let mut urgent = wide.clone();
        urgent[80] = rt(80, 10, 15, 100);
        let decision = policy.decide(&urgent).expect("someone wins");
        assert_eq!(decision.master, MasterId::new(80));
    }

    fn rt(master: u8, objective: u32, priority: u8, waited: u64) -> RequestView {
        RequestView::new(
            MasterId::new(master),
            QosConfig::real_time(objective, priority),
            waited,
        )
    }

    #[test]
    fn no_requests_no_grant() {
        let policy = ArbitrationPolicy::default();
        assert_eq!(policy.decide(&[]), None);
        let masked = RequestView {
            masked: true,
            ..nrt(0, 0, 0)
        };
        assert_eq!(policy.decide(&[masked]), None);
    }

    #[test]
    fn single_request_wins_immediately() {
        let policy = ArbitrationPolicy::default();
        let decision = policy.decide(&[nrt(3, 7, 0)]).expect("grant");
        assert_eq!(decision.master, MasterId::new(3));
    }

    #[test]
    fn locked_master_keeps_the_bus() {
        let policy = ArbitrationPolicy::default();
        let mut locked = nrt(2, 9, 0);
        locked.holds_lock = true;
        let urgent_rt = rt(0, 8, 0, 100); // would otherwise win easily
        let decision = policy.decide(&[urgent_rt, locked]).expect("grant");
        assert_eq!(decision.master, MasterId::new(2));
        assert_eq!(decision.decided_by, ArbitrationFilter::RequestMask);
    }

    #[test]
    fn nearly_full_write_buffer_preempts() {
        let policy = ArbitrationPolicy::default();
        let mut buffer = nrt(7, 15, 0);
        buffer.is_write_buffer = true;
        buffer.write_buffer_fill = 4;
        let rt_master = rt(0, 1000, 0, 0);
        let decision = policy.decide(&[rt_master, buffer]).expect("grant");
        assert_eq!(decision.master, MasterId::new(7));
        assert_eq!(decision.decided_by, ArbitrationFilter::WriteBufferUrgency);
    }

    #[test]
    fn qos_urgency_beats_class_and_priority() {
        let policy = ArbitrationPolicy::default();
        // Master 5 is non-urgent real-time, master 1 is an urgent real-time
        // master with worse fixed priority.
        let relaxed = rt(5, 10_000, 0, 0);
        let urgent = rt(1, 40, 7, 30); // 30 waited + 16 margin >= 40
        let decision = policy.decide(&[relaxed, urgent]).expect("grant");
        assert_eq!(decision.master, MasterId::new(1));
        assert_eq!(decision.decided_by, ArbitrationFilter::QosUrgency);
    }

    #[test]
    fn real_time_class_beats_non_real_time() {
        let policy = ArbitrationPolicy::default();
        let cpu = nrt(0, 0, 500);
        let video = rt(3, 100_000, 9, 0);
        let decision = policy.decide(&[cpu, video]).expect("grant");
        assert_eq!(decision.master, MasterId::new(3));
        assert_eq!(decision.decided_by, ArbitrationFilter::RealTimeClass);
    }

    #[test]
    fn bank_affinity_prefers_ready_banks() {
        let policy = ArbitrationPolicy::default();
        let mut miss = nrt(0, 0, 0);
        miss.bank_ready = false;
        let mut hit = nrt(1, 5, 0);
        hit.bank_ready = true;
        let decision = policy.decide(&[miss, hit]).expect("grant");
        assert_eq!(decision.master, MasterId::new(1));
        assert_eq!(decision.decided_by, ArbitrationFilter::BankAffinity);
    }

    #[test]
    fn round_robin_rotates_among_equals() {
        let mut policy = ArbitrationPolicy::default();
        let a = nrt(0, 5, 0);
        let b = nrt(1, 5, 0);
        let c = nrt(2, 5, 0);
        let first = policy.decide(&[a, b, c]).expect("grant");
        assert_eq!(first.master, MasterId::new(0), "fixed priority tie-break");
        policy.record_grant(first.master);
        let second = policy.decide(&[a, b, c]).expect("grant");
        assert_eq!(second.master, MasterId::new(1), "round robin advances");
        policy.record_grant(second.master);
        let third = policy.decide(&[a, b, c]).expect("grant");
        assert_eq!(third.master, MasterId::new(2));
        policy.record_grant(third.master);
        let wrap = policy.decide(&[a, b, c]).expect("grant");
        assert_eq!(wrap.master, MasterId::new(0));
    }

    #[test]
    fn plain_ahb_config_is_strict_priority() {
        let mut policy = ArbitrationPolicy::new(ArbiterConfig::plain_ahb_fixed_priority());
        let low = nrt(2, 9, 1_000_000);
        let high = nrt(1, 0, 0);
        for _ in 0..3 {
            let decision = policy.decide(&[low, high]).expect("grant");
            assert_eq!(decision.master, MasterId::new(1), "always the same winner");
            policy.record_grant(decision.master);
        }
    }

    #[test]
    fn disabling_a_filter_changes_the_outcome() {
        let full = ArbitrationPolicy::new(ArbiterConfig::ahb_plus());
        let no_class = ArbitrationPolicy::new(
            ArbiterConfig::ahb_plus().without(ArbitrationFilter::RealTimeClass),
        );
        let cpu = nrt(0, 0, 0);
        let video = rt(1, 100_000, 9, 0);
        assert_eq!(full.decide(&[cpu, video]).unwrap().master, MasterId::new(1));
        assert_eq!(
            no_class.decide(&[cpu, video]).unwrap().master,
            MasterId::new(0),
            "without the class filter the CPU's better fixed priority wins"
        );
    }

    #[test]
    fn with_and_without_maintain_chain_order() {
        let config = ArbiterConfig::plain_ahb_fixed_priority()
            .with(ArbitrationFilter::QosUrgency)
            .with(ArbitrationFilter::RealTimeClass);
        let positions: Vec<usize> = config
            .enabled
            .iter()
            .map(|f| ArbitrationFilter::ALL.iter().position(|x| x == f).unwrap())
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted, "filters stay in canonical order");
        assert!(config.is_enabled(ArbitrationFilter::QosUrgency));
        assert!(!config.is_enabled(ArbitrationFilter::BankAffinity));
    }

    #[test]
    fn decide_is_pure_until_record_grant() {
        let policy = ArbitrationPolicy::default();
        let a = nrt(0, 5, 0);
        let b = nrt(1, 5, 0);
        let first = policy.decide(&[a, b]).unwrap();
        let second = policy.decide(&[a, b]).unwrap();
        assert_eq!(first, second, "speculative decisions do not mutate state");
    }

    #[test]
    fn filter_display_names() {
        assert_eq!(ArbitrationFilter::QosUrgency.to_string(), "qos-urgency");
        assert_eq!(ArbitrationFilter::ALL.len(), 7);
    }
}
