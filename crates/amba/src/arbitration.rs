//! The AHB+ arbitration filter chain.
//!
//! The AHB+ arbiter implements "seven arbitration filters ... always
//! activated without the consideration of master / slave combinations"
//! (paper §3.3) and each algorithm can be switched on and off as a model
//! parameter (paper §3.7). The internal Samsung specification of the exact
//! seven filters is not public, so this module reconstructs a filter chain
//! that realizes every mechanism the paper *does* name — QoS objective
//! registers, real-time / non-real-time master classes, the write buffer
//! acting as an extra master, and bank-affinity feedback over the Bus
//! Interface — as seven successive candidate-narrowing stages:
//!
//! 1. [`ArbitrationFilter::RequestMask`] — remove masters that are masked or
//!    defer to a master holding a locked sequence.
//! 2. [`ArbitrationFilter::WriteBufferUrgency`] — when the write buffer is
//!    close to overflowing, it must win so posted writes are not lost.
//! 3. [`ArbitrationFilter::QosUrgency`] — real-time masters whose QoS
//!    objective is about to be violated pre-empt everything else.
//! 4. [`ArbitrationFilter::RealTimeClass`] — otherwise real-time masters
//!    beat non-real-time masters.
//! 5. [`ArbitrationFilter::BankAffinity`] — prefer requests whose target
//!    DRAM bank is ready (idle or row already open), maximizing the benefit
//!    of bank interleaving.
//! 6. [`ArbitrationFilter::RoundRobin`] — rotate fairly among the survivors.
//! 7. [`ArbitrationFilter::FixedPriority`] — deterministic final tie-break
//!    (the plain-AHB fixed priority).
//!
//! The chain is implemented **once**, as a pure decision function over
//! [`RequestView`] snapshots, and is called by *both* the cycle-accurate
//! arbiter in `ahb-rtl` and the transaction-level arbiter in `ahb-tlm`.
//! The two models therefore pick the same winners and differ only in when
//! decisions are evaluated — which is exactly the abstraction the paper's
//! accuracy experiment quantifies.

use std::fmt;

use crate::ids::MasterId;
use crate::qos::QosConfig;

/// One stage of the AHB+ arbitration filter chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbitrationFilter {
    /// Stage 1: request masking / bus locking.
    RequestMask,
    /// Stage 2: write-buffer overflow protection.
    WriteBufferUrgency,
    /// Stage 3: QoS-objective urgency boost for real-time masters.
    QosUrgency,
    /// Stage 4: real-time class preference.
    RealTimeClass,
    /// Stage 5: DRAM bank-affinity preference (uses BI feedback).
    BankAffinity,
    /// Stage 6: round-robin fairness.
    RoundRobin,
    /// Stage 7: fixed-priority tie break.
    FixedPriority,
}

impl ArbitrationFilter {
    /// All seven filters in chain order.
    pub const ALL: [ArbitrationFilter; 7] = [
        ArbitrationFilter::RequestMask,
        ArbitrationFilter::WriteBufferUrgency,
        ArbitrationFilter::QosUrgency,
        ArbitrationFilter::RealTimeClass,
        ArbitrationFilter::BankAffinity,
        ArbitrationFilter::RoundRobin,
        ArbitrationFilter::FixedPriority,
    ];
}

impl fmt::Display for ArbitrationFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ArbitrationFilter::RequestMask => "request-mask",
            ArbitrationFilter::WriteBufferUrgency => "write-buffer-urgency",
            ArbitrationFilter::QosUrgency => "qos-urgency",
            ArbitrationFilter::RealTimeClass => "real-time-class",
            ArbitrationFilter::BankAffinity => "bank-affinity",
            ArbitrationFilter::RoundRobin => "round-robin",
            ArbitrationFilter::FixedPriority => "fixed-priority",
        };
        write!(f, "{text}")
    }
}

/// Static configuration of the arbiter (paper §3.7 lists "arbitration
/// algorithm on/off" among the model parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterConfig {
    /// Which filters are active. Disabled filters are skipped; the chain
    /// always ends with a deterministic fixed-priority pick even if the
    /// `FixedPriority` stage itself is disabled, so arbitration never
    /// returns an ambiguous result.
    pub enabled: Vec<ArbitrationFilter>,
    /// How many cycles before the QoS objective expires a request is
    /// considered urgent (stage 3).
    pub urgency_margin: u32,
    /// Write-buffer occupancy (in entries) at which stage 2 kicks in.
    pub write_buffer_high_watermark: usize,
}

impl ArbiterConfig {
    /// The full AHB+ configuration: all seven filters enabled.
    #[must_use]
    pub fn ahb_plus() -> Self {
        ArbiterConfig {
            enabled: ArbitrationFilter::ALL.to_vec(),
            urgency_margin: 16,
            write_buffer_high_watermark: 3,
        }
    }

    /// A plain AMBA 2.0 AHB fixed-priority arbiter (QoS, bank-affinity and
    /// fairness filters all disabled) — the baseline AHB+ improves upon.
    #[must_use]
    pub fn plain_ahb_fixed_priority() -> Self {
        ArbiterConfig {
            enabled: vec![
                ArbitrationFilter::RequestMask,
                ArbitrationFilter::FixedPriority,
            ],
            urgency_margin: 0,
            write_buffer_high_watermark: usize::MAX,
        }
    }

    /// Returns `true` if `filter` is enabled.
    #[must_use]
    pub fn is_enabled(&self, filter: ArbitrationFilter) -> bool {
        self.enabled.contains(&filter)
    }

    /// Returns a copy of the configuration with `filter` removed.
    #[must_use]
    pub fn without(mut self, filter: ArbitrationFilter) -> Self {
        self.enabled.retain(|f| *f != filter);
        self
    }

    /// Returns a copy of the configuration with `filter` added (if absent).
    #[must_use]
    pub fn with(mut self, filter: ArbitrationFilter) -> Self {
        if !self.enabled.contains(&filter) {
            self.enabled.push(filter);
            // keep canonical chain order
            self.enabled
                .sort_by_key(|f| ArbitrationFilter::ALL.iter().position(|x| x == f));
        }
        self
    }
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig::ahb_plus()
    }
}

/// Snapshot of one pending bus request as seen by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestView {
    /// Requesting master (the write buffer uses its own master id).
    pub master: MasterId,
    /// QoS registers of the requesting master.
    pub qos: QosConfig,
    /// Cycles the request has been outstanding.
    pub waited: u64,
    /// Request is masked out (e.g. the decoder reports an unmapped address).
    pub masked: bool,
    /// The master currently holds a locked sequence and must keep the bus.
    pub holds_lock: bool,
    /// This request comes from the AHB+ write buffer.
    pub is_write_buffer: bool,
    /// Current write-buffer occupancy (only meaningful for the buffer's own
    /// request).
    pub write_buffer_fill: usize,
    /// Target DRAM bank is ready (idle or row already open) according to the
    /// BI feedback.
    pub bank_ready: bool,
}

impl RequestView {
    /// Creates a plain, unmasked request snapshot.
    #[must_use]
    pub fn new(master: MasterId, qos: QosConfig, waited: u64) -> Self {
        RequestView {
            master,
            qos,
            waited,
            masked: false,
            holds_lock: false,
            is_write_buffer: false,
            write_buffer_fill: 0,
            bank_ready: false,
        }
    }
}

/// Why the winning request was selected (the first filter that isolated it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The granted master.
    pub master: MasterId,
    /// The filter stage that made the final selection.
    pub decided_by: ArbitrationFilter,
}

/// Stateful arbitration policy (the round-robin pointer is the only state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbitrationPolicy {
    config: ArbiterConfig,
    last_granted: Option<MasterId>,
}

impl ArbitrationPolicy {
    /// Creates a policy from a configuration.
    #[must_use]
    pub fn new(config: ArbiterConfig) -> Self {
        ArbitrationPolicy {
            config,
            last_granted: None,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ArbiterConfig {
        &self.config
    }

    /// The master granted by the most recent decision, if any.
    #[must_use]
    pub fn last_granted(&self) -> Option<MasterId> {
        self.last_granted
    }

    /// Applies the filter chain to the pending requests and returns the
    /// winner, or `None` when no grantable request exists.
    ///
    /// The round-robin pointer is only advanced by
    /// [`ArbitrationPolicy::record_grant`], so `decide` itself is pure and
    /// can be called speculatively (the request-pipelining path does this).
    #[must_use]
    pub fn decide(&self, requests: &[RequestView]) -> Option<Decision> {
        let mut candidates: Vec<&RequestView> = requests.iter().filter(|r| !r.masked).collect();
        if candidates.is_empty() {
            return None;
        }

        for filter in ArbitrationFilter::ALL {
            if !self.config.is_enabled(filter) {
                continue;
            }
            let narrowed = self.apply_filter(filter, &candidates);
            if !narrowed.is_empty() {
                candidates = narrowed;
            }
            if candidates.len() == 1 {
                return Some(Decision {
                    master: candidates[0].master,
                    decided_by: filter,
                });
            }
        }

        // Deterministic fallback: fixed priority, then master index.
        let winner = candidates
            .iter()
            .min_by_key(|r| (r.qos.fixed_priority, r.master.index()))?;
        Some(Decision {
            master: winner.master,
            decided_by: ArbitrationFilter::FixedPriority,
        })
    }

    /// Records that `master` was actually granted, advancing the
    /// round-robin pointer.
    pub fn record_grant(&mut self, master: MasterId) {
        self.last_granted = Some(master);
    }

    fn apply_filter<'a>(
        &self,
        filter: ArbitrationFilter,
        candidates: &[&'a RequestView],
    ) -> Vec<&'a RequestView> {
        match filter {
            ArbitrationFilter::RequestMask => {
                // Locked sequences own the bus outright.
                let locked: Vec<&RequestView> = candidates
                    .iter()
                    .copied()
                    .filter(|r| r.holds_lock)
                    .collect();
                if locked.is_empty() {
                    candidates.to_vec()
                } else {
                    locked
                }
            }
            ArbitrationFilter::WriteBufferUrgency => {
                let urgent: Vec<&RequestView> = candidates
                    .iter()
                    .copied()
                    .filter(|r| {
                        r.is_write_buffer
                            && r.write_buffer_fill >= self.config.write_buffer_high_watermark
                    })
                    .collect();
                if urgent.is_empty() {
                    candidates.to_vec()
                } else {
                    urgent
                }
            }
            ArbitrationFilter::QosUrgency => {
                let urgent: Vec<&RequestView> = candidates
                    .iter()
                    .copied()
                    .filter(|r| r.qos.is_urgent(r.waited, self.config.urgency_margin))
                    .collect();
                if urgent.is_empty() {
                    candidates.to_vec()
                } else {
                    urgent
                }
            }
            ArbitrationFilter::RealTimeClass => {
                let real_time: Vec<&RequestView> = candidates
                    .iter()
                    .copied()
                    .filter(|r| r.qos.class.is_real_time())
                    .collect();
                if real_time.is_empty() {
                    candidates.to_vec()
                } else {
                    real_time
                }
            }
            ArbitrationFilter::BankAffinity => {
                let ready: Vec<&RequestView> = candidates
                    .iter()
                    .copied()
                    .filter(|r| r.bank_ready)
                    .collect();
                if ready.is_empty() {
                    candidates.to_vec()
                } else {
                    ready
                }
            }
            ArbitrationFilter::RoundRobin => {
                let Some(last) = self.last_granted else {
                    return candidates.to_vec();
                };
                // Pick the candidate with the smallest positive cyclic
                // distance from the last-granted master; keep only it and
                // any candidates tied with it (there are none because master
                // ids are unique, but staying set-valued keeps the filter
                // composable).
                let distance = |m: MasterId| -> usize {
                    let span = 256usize;
                    (m.index() + span - last.index() - 1) % span
                };
                let best = candidates.iter().map(|r| distance(r.master)).min();
                match best {
                    Some(best) => candidates
                        .iter()
                        .copied()
                        .filter(|r| distance(r.master) == best)
                        .collect(),
                    None => candidates.to_vec(),
                }
            }
            ArbitrationFilter::FixedPriority => {
                let best = candidates
                    .iter()
                    .map(|r| (r.qos.fixed_priority, r.master.index()))
                    .min();
                match best {
                    Some(best) => candidates
                        .iter()
                        .copied()
                        .filter(|r| (r.qos.fixed_priority, r.master.index()) == best)
                        .collect(),
                    None => candidates.to_vec(),
                }
            }
        }
    }
}

impl Default for ArbitrationPolicy {
    fn default() -> Self {
        ArbitrationPolicy::new(ArbiterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::QosConfig;

    fn nrt(master: u8, priority: u8, waited: u64) -> RequestView {
        RequestView::new(
            MasterId::new(master),
            QosConfig::non_real_time(priority),
            waited,
        )
    }

    fn rt(master: u8, objective: u32, priority: u8, waited: u64) -> RequestView {
        RequestView::new(
            MasterId::new(master),
            QosConfig::real_time(objective, priority),
            waited,
        )
    }

    #[test]
    fn no_requests_no_grant() {
        let policy = ArbitrationPolicy::default();
        assert_eq!(policy.decide(&[]), None);
        let masked = RequestView {
            masked: true,
            ..nrt(0, 0, 0)
        };
        assert_eq!(policy.decide(&[masked]), None);
    }

    #[test]
    fn single_request_wins_immediately() {
        let policy = ArbitrationPolicy::default();
        let decision = policy.decide(&[nrt(3, 7, 0)]).expect("grant");
        assert_eq!(decision.master, MasterId::new(3));
    }

    #[test]
    fn locked_master_keeps_the_bus() {
        let policy = ArbitrationPolicy::default();
        let mut locked = nrt(2, 9, 0);
        locked.holds_lock = true;
        let urgent_rt = rt(0, 8, 0, 100); // would otherwise win easily
        let decision = policy.decide(&[urgent_rt, locked]).expect("grant");
        assert_eq!(decision.master, MasterId::new(2));
        assert_eq!(decision.decided_by, ArbitrationFilter::RequestMask);
    }

    #[test]
    fn nearly_full_write_buffer_preempts() {
        let policy = ArbitrationPolicy::default();
        let mut buffer = nrt(7, 15, 0);
        buffer.is_write_buffer = true;
        buffer.write_buffer_fill = 4;
        let rt_master = rt(0, 1000, 0, 0);
        let decision = policy.decide(&[rt_master, buffer]).expect("grant");
        assert_eq!(decision.master, MasterId::new(7));
        assert_eq!(decision.decided_by, ArbitrationFilter::WriteBufferUrgency);
    }

    #[test]
    fn qos_urgency_beats_class_and_priority() {
        let policy = ArbitrationPolicy::default();
        // Master 5 is non-urgent real-time, master 1 is an urgent real-time
        // master with worse fixed priority.
        let relaxed = rt(5, 10_000, 0, 0);
        let urgent = rt(1, 40, 7, 30); // 30 waited + 16 margin >= 40
        let decision = policy.decide(&[relaxed, urgent]).expect("grant");
        assert_eq!(decision.master, MasterId::new(1));
        assert_eq!(decision.decided_by, ArbitrationFilter::QosUrgency);
    }

    #[test]
    fn real_time_class_beats_non_real_time() {
        let policy = ArbitrationPolicy::default();
        let cpu = nrt(0, 0, 500);
        let video = rt(3, 100_000, 9, 0);
        let decision = policy.decide(&[cpu, video]).expect("grant");
        assert_eq!(decision.master, MasterId::new(3));
        assert_eq!(decision.decided_by, ArbitrationFilter::RealTimeClass);
    }

    #[test]
    fn bank_affinity_prefers_ready_banks() {
        let policy = ArbitrationPolicy::default();
        let mut miss = nrt(0, 0, 0);
        miss.bank_ready = false;
        let mut hit = nrt(1, 5, 0);
        hit.bank_ready = true;
        let decision = policy.decide(&[miss, hit]).expect("grant");
        assert_eq!(decision.master, MasterId::new(1));
        assert_eq!(decision.decided_by, ArbitrationFilter::BankAffinity);
    }

    #[test]
    fn round_robin_rotates_among_equals() {
        let mut policy = ArbitrationPolicy::default();
        let a = nrt(0, 5, 0);
        let b = nrt(1, 5, 0);
        let c = nrt(2, 5, 0);
        let first = policy.decide(&[a, b, c]).expect("grant");
        assert_eq!(first.master, MasterId::new(0), "fixed priority tie-break");
        policy.record_grant(first.master);
        let second = policy.decide(&[a, b, c]).expect("grant");
        assert_eq!(second.master, MasterId::new(1), "round robin advances");
        policy.record_grant(second.master);
        let third = policy.decide(&[a, b, c]).expect("grant");
        assert_eq!(third.master, MasterId::new(2));
        policy.record_grant(third.master);
        let wrap = policy.decide(&[a, b, c]).expect("grant");
        assert_eq!(wrap.master, MasterId::new(0));
    }

    #[test]
    fn plain_ahb_config_is_strict_priority() {
        let mut policy = ArbitrationPolicy::new(ArbiterConfig::plain_ahb_fixed_priority());
        let low = nrt(2, 9, 1_000_000);
        let high = nrt(1, 0, 0);
        for _ in 0..3 {
            let decision = policy.decide(&[low, high]).expect("grant");
            assert_eq!(decision.master, MasterId::new(1), "always the same winner");
            policy.record_grant(decision.master);
        }
    }

    #[test]
    fn disabling_a_filter_changes_the_outcome() {
        let full = ArbitrationPolicy::new(ArbiterConfig::ahb_plus());
        let no_class = ArbitrationPolicy::new(
            ArbiterConfig::ahb_plus().without(ArbitrationFilter::RealTimeClass),
        );
        let cpu = nrt(0, 0, 0);
        let video = rt(1, 100_000, 9, 0);
        assert_eq!(
            full.decide(&[cpu, video]).unwrap().master,
            MasterId::new(1)
        );
        assert_eq!(
            no_class.decide(&[cpu, video]).unwrap().master,
            MasterId::new(0),
            "without the class filter the CPU's better fixed priority wins"
        );
    }

    #[test]
    fn with_and_without_maintain_chain_order() {
        let config = ArbiterConfig::plain_ahb_fixed_priority()
            .with(ArbitrationFilter::QosUrgency)
            .with(ArbitrationFilter::RealTimeClass);
        let positions: Vec<usize> = config
            .enabled
            .iter()
            .map(|f| ArbitrationFilter::ALL.iter().position(|x| x == f).unwrap())
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted, "filters stay in canonical order");
        assert!(config.is_enabled(ArbitrationFilter::QosUrgency));
        assert!(!config.is_enabled(ArbitrationFilter::BankAffinity));
    }

    #[test]
    fn decide_is_pure_until_record_grant() {
        let policy = ArbitrationPolicy::default();
        let a = nrt(0, 5, 0);
        let b = nrt(1, 5, 0);
        let first = policy.decide(&[a, b]).unwrap();
        let second = policy.decide(&[a, b]).unwrap();
        assert_eq!(first, second, "speculative decisions do not mutate state");
    }

    #[test]
    fn filter_display_names() {
        assert_eq!(ArbitrationFilter::QosUrgency.to_string(), "qos-urgency");
        assert_eq!(ArbitrationFilter::ALL.len(), 7);
    }
}
