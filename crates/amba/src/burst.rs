//! Burst address arithmetic.
//!
//! A burst is described by its kind (single, fixed-length incrementing or
//! wrapping, undefined-length incrementing), the per-beat transfer size and
//! the starting address. [`BurstSequence`] produces the exact per-beat
//! address sequence the AMBA 2.0 specification mandates, including the
//! wrap-around behaviour of `WRAPx` bursts; both bus models and the DDR
//! controller use it so their beat-by-beat address streams agree.

use crate::ids::Addr;
use crate::signal::{HBurst, HSize};

/// The burst vocabulary used by workload generators and transactions.
///
/// This is a slightly higher-level view than raw [`HBurst`]: undefined
/// length `INCR` bursts carry their intended beat count, which the
/// signal-level encoding cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BurstKind {
    /// A single beat.
    Single,
    /// Undefined-length incrementing burst of the given number of beats.
    Incr(u32),
    /// 4-beat incrementing burst.
    Incr4,
    /// 8-beat incrementing burst.
    Incr8,
    /// 16-beat incrementing burst.
    Incr16,
    /// 4-beat wrapping burst.
    Wrap4,
    /// 8-beat wrapping burst.
    Wrap8,
    /// 16-beat wrapping burst.
    Wrap16,
}

impl BurstKind {
    /// Number of beats in the burst.
    ///
    /// `Incr(0)` is normalized to one beat: a master that requests a burst
    /// always transfers at least one beat.
    #[must_use]
    pub const fn beats(self) -> u32 {
        match self {
            BurstKind::Single => 1,
            BurstKind::Incr(n) => {
                if n == 0 {
                    1
                } else {
                    n
                }
            }
            BurstKind::Incr4 | BurstKind::Wrap4 => 4,
            BurstKind::Incr8 | BurstKind::Wrap8 => 8,
            BurstKind::Incr16 | BurstKind::Wrap16 => 16,
        }
    }

    /// Returns `true` for the wrapping variants.
    #[must_use]
    pub const fn is_wrapping(self) -> bool {
        matches!(
            self,
            BurstKind::Wrap4 | BurstKind::Wrap8 | BurstKind::Wrap16
        )
    }

    /// The `HBURST` encoding driven on the wires for this burst.
    #[must_use]
    pub const fn hburst(self) -> HBurst {
        match self {
            BurstKind::Single => HBurst::Single,
            BurstKind::Incr(_) => HBurst::Incr,
            BurstKind::Incr4 => HBurst::Incr4,
            BurstKind::Incr8 => HBurst::Incr8,
            BurstKind::Incr16 => HBurst::Incr16,
            BurstKind::Wrap4 => HBurst::Wrap4,
            BurstKind::Wrap8 => HBurst::Wrap8,
            BurstKind::Wrap16 => HBurst::Wrap16,
        }
    }

    /// Builds the burst kind matching a fixed-length `HBURST` encoding.
    ///
    /// `INCR` needs an explicit length, supplied by `incr_beats`.
    #[must_use]
    pub const fn from_hburst(hburst: HBurst, incr_beats: u32) -> Self {
        match hburst {
            HBurst::Single => BurstKind::Single,
            HBurst::Incr => BurstKind::Incr(incr_beats),
            HBurst::Incr4 => BurstKind::Incr4,
            HBurst::Incr8 => BurstKind::Incr8,
            HBurst::Incr16 => BurstKind::Incr16,
            HBurst::Wrap4 => BurstKind::Wrap4,
            HBurst::Wrap8 => BurstKind::Wrap8,
            HBurst::Wrap16 => BurstKind::Wrap16,
        }
    }
}

/// Iterator over the per-beat addresses of a burst.
///
/// # Example
///
/// ```
/// use amba::burst::{BurstKind, BurstSequence};
/// use amba::ids::Addr;
/// use amba::signal::HSize;
///
/// // WRAP4 of words starting at 0x38 wraps inside the 16-byte block.
/// let addrs: Vec<u32> = BurstSequence::new(Addr::new(0x38), BurstKind::Wrap4, HSize::Word)
///     .map(|a| a.value())
///     .collect();
/// assert_eq!(addrs, vec![0x38, 0x3C, 0x30, 0x34]);
/// ```
#[derive(Debug, Clone)]
pub struct BurstSequence {
    start: Addr,
    kind: BurstKind,
    size: HSize,
    beat: u32,
}

impl BurstSequence {
    /// Creates the address sequence for one burst.
    #[must_use]
    pub fn new(start: Addr, kind: BurstKind, size: HSize) -> Self {
        BurstSequence {
            start,
            kind,
            size,
            beat: 0,
        }
    }

    /// Total number of beats the sequence will produce.
    #[must_use]
    pub fn beats(&self) -> u32 {
        self.kind.beats()
    }

    /// Address of beat `index` (0-based) without consuming the iterator.
    #[must_use]
    pub fn beat_addr(&self, index: u32) -> Addr {
        let step = self.size.bytes();
        if self.kind.is_wrapping() {
            let total = step * self.kind.beats();
            let base = self.start.align_down(total);
            let offset = (self.start.offset_in(total) + index * step) % total;
            base.wrapping_add(offset)
        } else {
            self.start.wrapping_add(index * step)
        }
    }

    /// Returns `true` if any beat of the burst would fall into a different
    /// 1 KB block than the first beat — the boundary the AMBA 2.0
    /// specification forbids bursts to cross.
    #[must_use]
    pub fn crosses_1kb_boundary(&self) -> bool {
        let first_block = self.beat_addr(0).kib_block();
        (1..self.beats()).any(|i| self.beat_addr(i).kib_block() != first_block)
    }

    /// Total number of bytes moved by the burst.
    #[must_use]
    pub fn bytes(&self) -> u32 {
        self.beats() * self.size.bytes()
    }
}

impl Iterator for BurstSequence {
    type Item = Addr;

    fn next(&mut self) -> Option<Addr> {
        if self.beat >= self.kind.beats() {
            return None;
        }
        let addr = self.beat_addr(self.beat);
        self.beat += 1;
        Some(addr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.kind.beats() - self.beat) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for BurstSequence {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_counts() {
        assert_eq!(BurstKind::Single.beats(), 1);
        assert_eq!(BurstKind::Incr(7).beats(), 7);
        assert_eq!(BurstKind::Incr(0).beats(), 1, "zero-length normalized");
        assert_eq!(BurstKind::Incr16.beats(), 16);
        assert_eq!(BurstKind::Wrap8.beats(), 8);
    }

    #[test]
    fn hburst_mapping_round_trips() {
        for kind in [
            BurstKind::Single,
            BurstKind::Incr4,
            BurstKind::Incr8,
            BurstKind::Incr16,
            BurstKind::Wrap4,
            BurstKind::Wrap8,
            BurstKind::Wrap16,
        ] {
            assert_eq!(BurstKind::from_hburst(kind.hburst(), 0), kind);
        }
        assert_eq!(BurstKind::from_hburst(HBurst::Incr, 6), BurstKind::Incr(6));
    }

    #[test]
    fn incrementing_addresses_step_by_size() {
        let seq = BurstSequence::new(Addr::new(0x100), BurstKind::Incr4, HSize::Word);
        let addrs: Vec<u32> = seq.map(|a| a.value()).collect();
        assert_eq!(addrs, vec![0x100, 0x104, 0x108, 0x10C]);
    }

    #[test]
    fn incrementing_halfword_addresses() {
        let seq = BurstSequence::new(Addr::new(0x20), BurstKind::Incr(3), HSize::Halfword);
        let addrs: Vec<u32> = seq.map(|a| a.value()).collect();
        assert_eq!(addrs, vec![0x20, 0x22, 0x24]);
    }

    #[test]
    fn wrap4_wraps_inside_aligned_block() {
        let seq = BurstSequence::new(Addr::new(0x38), BurstKind::Wrap4, HSize::Word);
        let addrs: Vec<u32> = seq.map(|a| a.value()).collect();
        assert_eq!(addrs, vec![0x38, 0x3C, 0x30, 0x34]);
    }

    #[test]
    fn wrap8_doubleword_matches_spec_example() {
        // 8-beat wrapping burst of doublewords wraps at a 64-byte boundary.
        let seq = BurstSequence::new(Addr::new(0x34), BurstKind::Wrap8, HSize::Word);
        let addrs: Vec<u32> = seq.map(|a| a.value()).collect();
        assert_eq!(addrs, vec![0x34, 0x38, 0x3C, 0x20, 0x24, 0x28, 0x2C, 0x30]);
    }

    #[test]
    fn wrap_burst_at_aligned_start_never_wraps() {
        let seq = BurstSequence::new(Addr::new(0x40), BurstKind::Wrap4, HSize::Word);
        let addrs: Vec<u32> = seq.map(|a| a.value()).collect();
        assert_eq!(addrs, vec![0x40, 0x44, 0x48, 0x4C]);
    }

    #[test]
    fn boundary_rule_detection() {
        // An INCR16 of words starting 8 bytes below a 1KB boundary crosses it.
        let crossing = BurstSequence::new(Addr::new(0x0000_03F8), BurstKind::Incr16, HSize::Word);
        assert!(crossing.crosses_1kb_boundary());
        // Wrapping bursts never cross because they stay in an aligned block.
        let wrapping = BurstSequence::new(Addr::new(0x0000_03F8), BurstKind::Wrap16, HSize::Word);
        assert!(!wrapping.crosses_1kb_boundary());
        let safe = BurstSequence::new(Addr::new(0x0000_0000), BurstKind::Incr16, HSize::Word);
        assert!(!safe.crosses_1kb_boundary());
    }

    #[test]
    fn bytes_and_len() {
        let seq = BurstSequence::new(Addr::new(0), BurstKind::Incr8, HSize::Word);
        assert_eq!(seq.bytes(), 32);
        assert_eq!(seq.len(), 8);
        let mut seq = seq;
        seq.next();
        assert_eq!(seq.len(), 7);
    }
}
