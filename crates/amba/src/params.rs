//! AHB+ model parameters (paper §3.7).
//!
//! "For the flexibility and reusability, AHB+ TLM has several parameters,
//! such as bus width, write buffer depth, arbitration algorithm on/off, and
//! etc. Other parameters are selection of real-time/non-real time type of a
//! master, write buffer on/off, and QoS value."
//!
//! [`AhbPlusParams`] gathers the bus-side knobs; the per-master QoS knobs
//! live in [`crate::qos::QosRegisterFile`], and the DDR knobs in the `ddrc`
//! crate. Both the pin-accurate and the transaction-level model are
//! constructed from the same parameter block so that a configuration sweep
//! exercises both models identically.

use crate::arbitration::ArbiterConfig;
use crate::signal::HSize;

/// Bus-level configuration shared by both AHB+ models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AhbPlusParams {
    /// Data bus width (per-beat transfer size the bus can sustain).
    pub bus_width: HSize,
    /// Arbitration filter configuration.
    pub arbiter: ArbiterConfig,
    /// Write buffer depth in transactions; `0` disables the write buffer.
    pub write_buffer_depth: usize,
    /// Whether the arbiter decides the next owner while the current data
    /// phase is still in progress (request pipelining).
    pub request_pipelining: bool,
    /// Whether next-transaction hints are forwarded to the DDR controller
    /// over the Bus Interface (bank interleaving).
    pub bi_next_transaction_hints: bool,
}

impl AhbPlusParams {
    /// The full AHB+ configuration used throughout the paper's evaluation.
    #[must_use]
    pub fn ahb_plus() -> Self {
        AhbPlusParams {
            bus_width: HSize::Word,
            arbiter: ArbiterConfig::ahb_plus(),
            write_buffer_depth: 4,
            request_pipelining: true,
            bi_next_transaction_hints: true,
        }
    }

    /// A plain AMBA 2.0 AHB configuration: fixed-priority arbitration, no
    /// write buffer, no request pipelining, no BI hints. This is the
    /// baseline AHB+ was designed to improve on (paper §2).
    #[must_use]
    pub fn plain_ahb() -> Self {
        AhbPlusParams {
            bus_width: HSize::Word,
            arbiter: ArbiterConfig::plain_ahb_fixed_priority(),
            write_buffer_depth: 0,
            request_pipelining: false,
            bi_next_transaction_hints: false,
        }
    }

    /// Returns `true` when the write buffer is present.
    #[must_use]
    pub fn has_write_buffer(&self) -> bool {
        self.write_buffer_depth > 0
    }

    /// Returns a copy with a different write-buffer depth.
    #[must_use]
    pub fn with_write_buffer_depth(mut self, depth: usize) -> Self {
        self.write_buffer_depth = depth;
        self
    }

    /// Returns a copy with request pipelining switched on or off.
    #[must_use]
    pub fn with_request_pipelining(mut self, enabled: bool) -> Self {
        self.request_pipelining = enabled;
        self
    }

    /// Returns a copy with BI next-transaction hints switched on or off.
    #[must_use]
    pub fn with_bi_hints(mut self, enabled: bool) -> Self {
        self.bi_next_transaction_hints = enabled;
        self
    }

    /// Returns a copy with a different arbiter configuration.
    #[must_use]
    pub fn with_arbiter(mut self, arbiter: ArbiterConfig) -> Self {
        self.arbiter = arbiter;
        self
    }
}

impl Default for AhbPlusParams {
    fn default() -> Self {
        AhbPlusParams::ahb_plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitration::ArbitrationFilter;

    #[test]
    fn ahb_plus_default_enables_everything() {
        let params = AhbPlusParams::default();
        assert!(params.has_write_buffer());
        assert!(params.request_pipelining);
        assert!(params.bi_next_transaction_hints);
        assert_eq!(params.arbiter.enabled.len(), 7);
    }

    #[test]
    fn plain_ahb_disables_the_extensions() {
        let params = AhbPlusParams::plain_ahb();
        assert!(!params.has_write_buffer());
        assert!(!params.request_pipelining);
        assert!(!params.bi_next_transaction_hints);
        assert!(!params.arbiter.is_enabled(ArbitrationFilter::QosUrgency));
    }

    #[test]
    fn builder_helpers_compose() {
        let params = AhbPlusParams::ahb_plus()
            .with_write_buffer_depth(8)
            .with_request_pipelining(false)
            .with_bi_hints(false)
            .with_arbiter(ArbiterConfig::plain_ahb_fixed_priority());
        assert_eq!(params.write_buffer_depth, 8);
        assert!(!params.request_pipelining);
        assert!(!params.bi_next_transaction_hints);
        assert_eq!(params.arbiter.enabled.len(), 2);
    }
}
