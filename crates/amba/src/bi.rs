//! The Bus Interface (BI) between the AHB+ arbiter and the DDR controller.
//!
//! The paper (§2, §3.4) introduces a special interface "for transferring
//! special information between arbiter and memory controller such as the
//! next transaction information, idle bank, access permission and so on".
//! The arbiter forwards the *next* transaction it has already arbitrated
//! (request pipelining) so the controller can pre-charge / activate the
//! target bank while the current transaction is still transferring data —
//! the bank-interleaving mechanism that maximizes bus utilization.
//!
//! In this reproduction the BI is a plain message vocabulary: the RTL model
//! drives the same information over dedicated signals, the TLM model passes
//! the messages as function arguments.

use std::fmt;

use crate::ids::{Addr, MasterId};
use crate::signal::HSize;
use crate::txn::TransferDirection;

/// Advance notice of the next arbitrated transaction (arbiter → DDRC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextTransactionInfo {
    /// The master that will own the next transaction.
    pub master: MasterId,
    /// Starting address of the next transaction.
    pub addr: Addr,
    /// Direction of the next transaction.
    pub direction: TransferDirection,
    /// Number of beats of the next transaction.
    pub beats: u32,
    /// Per-beat size of the next transaction.
    pub size: HSize,
}

impl fmt::Display for NextTransactionInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "next: {} {} {} x{} @ {}",
            self.master, self.direction, self.size, self.beats, self.addr
        )
    }
}

/// Per-bank readiness feedback (DDRC → arbiter).
///
/// `ready_banks` is a bitmask with bit *b* set when bank *b* is either idle
/// (pre-charged) or already has the row that the hinted address needs open —
/// i.e. a new transaction to that bank can start without paying the full
/// activate/pre-charge penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankHint {
    /// Bitmask of banks that can accept a new transaction cheaply.
    pub ready_banks: u32,
    /// Total number of banks in the device.
    pub bank_count: u8,
}

impl BankHint {
    /// Creates a hint for a device with `bank_count` banks and the given
    /// readiness mask.
    #[must_use]
    pub fn new(bank_count: u8, ready_banks: u32) -> Self {
        BankHint {
            ready_banks,
            bank_count,
        }
    }

    /// Returns `true` if `bank` is marked ready.
    #[must_use]
    pub fn is_ready(&self, bank: u8) -> bool {
        bank < self.bank_count && (self.ready_banks >> bank) & 1 == 1
    }

    /// Number of ready banks.
    #[must_use]
    pub fn ready_count(&self) -> u32 {
        let mask = if self.bank_count >= 32 {
            u32::MAX
        } else {
            (1u32 << self.bank_count) - 1
        };
        (self.ready_banks & mask).count_ones()
    }
}

/// Access permission handshake (DDRC → arbiter).
///
/// The controller can temporarily withhold permission, e.g. while all banks
/// are busy refreshing, so the arbiter does not start an address phase the
/// memory cannot accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessPermission {
    /// The controller can accept a new transaction immediately.
    #[default]
    Granted,
    /// The controller asks the arbiter to hold off for the given number of
    /// cycles (e.g. a refresh is in progress).
    Deferred(u32),
}

impl AccessPermission {
    /// Returns `true` if access is granted now.
    #[must_use]
    pub const fn is_granted(self) -> bool {
        matches!(self, AccessPermission::Granted)
    }

    /// Cycles to wait before retrying (zero when granted).
    #[must_use]
    pub const fn defer_cycles(self) -> u32 {
        match self {
            AccessPermission::Granted => 0,
            AccessPermission::Deferred(cycles) => cycles,
        }
    }
}

/// The messages that travel across the Bus Interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiMessage {
    /// Arbiter → DDRC: the next transaction that will be issued.
    NextTransaction(NextTransactionInfo),
    /// DDRC → arbiter: which banks are ready.
    BankStatus(BankHint),
    /// DDRC → arbiter: whether a new transaction may start.
    Permission(AccessPermission),
}

impl fmt::Display for BiMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BiMessage::NextTransaction(info) => write!(f, "{info}"),
            BiMessage::BankStatus(hint) => {
                write!(f, "banks ready: {:#06b}", hint.ready_banks)
            }
            BiMessage::Permission(p) => match p {
                AccessPermission::Granted => write!(f, "access granted"),
                AccessPermission::Deferred(c) => write!(f, "access deferred {c} cycles"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_hint_readiness() {
        let hint = BankHint::new(4, 0b1010);
        assert!(!hint.is_ready(0));
        assert!(hint.is_ready(1));
        assert!(!hint.is_ready(2));
        assert!(hint.is_ready(3));
        assert!(!hint.is_ready(4), "out of range bank is never ready");
        assert_eq!(hint.ready_count(), 2);
    }

    #[test]
    fn bank_hint_masks_out_of_range_bits() {
        let hint = BankHint::new(2, 0b1111);
        assert_eq!(hint.ready_count(), 2);
    }

    #[test]
    fn access_permission_defaults_to_granted() {
        let p = AccessPermission::default();
        assert!(p.is_granted());
        assert_eq!(p.defer_cycles(), 0);
        let d = AccessPermission::Deferred(12);
        assert!(!d.is_granted());
        assert_eq!(d.defer_cycles(), 12);
    }

    #[test]
    fn messages_display() {
        let info = NextTransactionInfo {
            master: MasterId::new(2),
            addr: Addr::new(0x2000_0040),
            direction: TransferDirection::Read,
            beats: 8,
            size: HSize::Word,
        };
        let text = BiMessage::NextTransaction(info).to_string();
        assert!(text.contains("M2"));
        assert!(text.contains("x8"));
        assert!(BiMessage::Permission(AccessPermission::Deferred(3))
            .to_string()
            .contains("deferred 3"));
        assert!(BiMessage::BankStatus(BankHint::new(4, 0b0101))
            .to_string()
            .contains("0b0101"));
    }
}
