//! `amba` — AMBA 2.0 AHB protocol vocabulary and the AHB+ extensions.
//!
//! This crate defines everything both bus models (the pin-accurate RTL
//! reference in `ahb-rtl` and the transaction-level model in `ahb-tlm`)
//! agree on:
//!
//! * [`ids`] — strongly-typed master/slave identifiers and addresses.
//! * [`signal`] — the AMBA 2.0 AHB signal encodings (`HTRANS`, `HBURST`,
//!   `HSIZE`, `HRESP`, ...) exactly as the specification defines them, with
//!   conversions to and from their bit patterns.
//! * [`burst`] — burst address arithmetic (beat counts, incrementing and
//!   wrapping address sequences, 1 KB boundary rule).
//! * [`txn`] — the transaction vocabulary used at the TLM ports
//!   (`Read(addr, *data, *ctrl)` in the paper) and by the workload
//!   generators, plus the [`txn::TxnArena`] transaction pool backing the
//!   zero-allocation TLM hot path.
//! * [`qos`] — the AHB+ extension registers: real-time / non-real-time
//!   master class and the QoS objective value (paper §2).
//! * [`arbitration`] — the AHB+ arbitration filter chain, implemented once
//!   as a pure decision function so that the RTL and TLM arbiters apply the
//!   *same algorithm* and differ only in timing, which is exactly the
//!   premise of the paper's accuracy comparison.
//! * [`bi`] — the Bus Interface (BI) message types carrying next-transaction
//!   information, idle-bank status and access permission between arbiter
//!   and DDR controller (paper §2, §3.4).
//! * [`memmap`] — the address decoder / memory map.
//! * [`bridge`] — the AHB-to-AHB bridge vocabulary of multi-bus platforms:
//!   the interleaved shard-window decode and the crossing records a bridge
//!   slave emits and a bridge master replays.
//! * [`check`] — protocol rule checks shared by both models (paper §3.5).
//!
//! # Transaction pool ownership rules
//!
//! In-flight transactions live in a [`txn::TxnArena`]; components exchange
//! `Copy`-able [`txn::TxnHandle`]s instead of cloning records. The rules:
//!
//! 1. Every live handle has exactly one owner — the component currently
//!    responsible for the transaction (a master port while the request
//!    pends, the write buffer after it absorbs a posted write, the bus
//!    while the data phase runs).
//! 2. Ownership moves with the transaction: master → write buffer on a
//!    successful absorb, master/buffer → bus on grant.
//! 3. Only the owner calls [`txn::TxnArena::release`], exactly once, after
//!    the transaction completes; the handle is dead afterwards.
//! 4. Anyone may *read* through [`txn::TxnArena::get`] while the handle is
//!    live (the arbiter and the DDR path do).
//!
//! Slots are recycled LIFO, so steady-state simulation performs no heap
//! allocation per transaction.
//!
//! # Example
//!
//! ```
//! use amba::burst::BurstKind;
//! use amba::txn::{Transaction, TransferDirection};
//! use amba::ids::{Addr, MasterId};
//!
//! let txn = Transaction::new(MasterId::new(0), Addr::new(0x4000_0000),
//!                            TransferDirection::Read, BurstKind::Incr4,
//!                            amba::signal::HSize::Word);
//! assert_eq!(txn.beats(), 4);
//! assert_eq!(txn.bytes(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitration;
pub mod bi;
pub mod bridge;
pub mod burst;
pub mod check;
pub mod ids;
pub mod memmap;
pub mod params;
pub mod qos;
pub mod signal;
pub mod txn;

pub use arbitration::{ArbiterConfig, ArbitrationFilter, ArbitrationPolicy, RequestView};
pub use bi::{AccessPermission, BankHint, BiMessage, NextTransactionInfo};
pub use bridge::{BridgeCrossing, BridgePort, CrossingLeg, ReplayStats, ShardMap, WindowMap};
pub use burst::{BurstKind, BurstSequence};
pub use check::ProtocolChecker;
pub use ids::{Addr, MasterId, SlaveId};
pub use memmap::{MemoryMap, Region};
pub use params::AhbPlusParams;
pub use qos::{MasterClass, QosConfig, QosRegisterFile};
pub use signal::{HBurst, HResp, HSize, HTrans};
pub use txn::{Transaction, TransactionId, TransferDirection, TxnArena, TxnHandle};
