//! Offline drop-in subset of the [proptest](https://docs.rs/proptest)
//! property-testing API.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the slice of proptest the workspace tests use: the
//! [`Strategy`] trait with `prop_map`, range and [`Just`] strategies,
//! [`any`], `prop::collection::vec`, [`prop_oneof!`], the [`proptest!`] test
//! macro and the `prop_assert*` macros. Sampling is a deterministic
//! splitmix64 stream seeded per test (FNV hash of the test name), so runs
//! are reproducible; there is no shrinking — a failing case panics with the
//! sampled values still recoverable from the assertion message.
//!
//! Swap in the real proptest by replacing the path dependency with a
//! registry dependency; no test source changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` test executes.
pub const DEFAULT_CASES: u32 = 96;

/// Deterministic splitmix64 sampling stream used by the shim.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// FNV-1a hash used to derive a per-test seed from its name.
#[must_use]
pub fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    start + rng.below(span + 1) as $ty
                }
            }
        )+
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy producing any value of `T` (subset of `proptest::arbitrary`).
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the [`Any`] strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform choice over boxed alternatives, built by [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given variants (at least one required).
    #[must_use]
    pub fn new(variants: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.variants.len() as u64) as usize;
        self.variants[pick].sample(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec`: element strategy + length range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Just, Strategy, TestRng,
    };
}

/// Uniform random choice between strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each function runs [`DEFAULT_CASES`] times with
/// inputs sampled from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..$crate::DEFAULT_CASES {
                    let _ = case;
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(42);
        for bound in [1u64, 2, 3, 17, 1_000_003] {
            for _ in 0..64 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_strategies_stay_in_range() {
        let mut rng = TestRng::new(1);
        for _ in 0..256 {
            let v = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (5u8..=9).sample(&mut rng);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn oneof_map_and_vec_compose() {
        let strategy = prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)];
        let mut rng = TestRng::new(3);
        for _ in 0..64 {
            let v: u32 = strategy.sample(&mut rng);
            assert!(v == 1 || (20u32..40).contains(&v));
        }
        let vecs = collection::vec(0u8..4, 1..5);
        let sampled = vecs.sample(&mut rng);
        assert!(!sampled.is_empty() && sampled.len() < 5);
    }

    proptest! {
        #[test]
        fn proptest_macro_runs_with_sampled_inputs(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }
    }
}
