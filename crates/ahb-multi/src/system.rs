//! The multi-bus platform engine: N bus shards under conservative
//! quantum synchronization.
//!
//! [`MultiSystem`] instantiates one complete single-bus backend per shard
//! (its own masters, arbiter, write buffer and DDR controller — an
//! `ahb-tlm` or `ahb-lt` instance with the bridge port attached) and runs
//! them under a barrier discipline:
//!
//! 1. every shard simulates freely up to the next quantum barrier;
//! 2. at the barrier, the crossings each shard issued are routed through
//!    the per-link bridge FIFOs ([`BridgeLink`]) and delivered to their
//!    destination shards as absolute-release work for the bridge replay
//!    masters;
//! 3. repeat until every shard drains and no crossing is in flight.
//!
//! The quantum equals the bridge's minimum crossing latency, so a
//! crossing issued inside quantum `k` can never be released before the
//! barrier ending quantum `k` — no shard can observe a remote effect it
//! should not yet see, regardless of execution order. That makes the
//! schedule *conservative* in the parallel-discrete-event sense, and it is
//! why the two execution modes — in-line on the calling thread, or one
//! worker thread per shard under `std::thread::scope` — run the identical
//! barrier/exchange schedule and produce probe-identical results. The
//! single-threaded mode is the reference implementation; the threaded
//! mode only changes wall-clock time.
//!
//! The platform itself implements [`BusModel`]: its probe aggregates the
//! shard probes (counting every workload transaction exactly once — the
//! remote replay of a crossing is bus occupancy, not new work) and its
//! report merges the per-master rows of all shards. `total_cycles` is the
//! **aggregate** number of bus cycles simulated across all shards (N
//! buses × the synchronized span), which is what makes Kcycles/s numbers
//! comparable across shard counts: the platform simulates N buses of
//! hardware per elapsed barrier cycle.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use ahb_lt::{LtConfig, LtSystem};
use ahb_tlm::{TlmConfig, TlmSystem};
use amba::bridge::{BridgePort, CrossingLeg, ReplayStats, ShardMap, WindowMap};
use amba::ids::MasterId;
use amba::txn::{Transaction, TransactionId};
use analysis::model::{BusModel, Probe, SyncStats};
use analysis::report::{BusMetrics, ModelKind, SimReport};
use analysis::trace::{TraceLog, Tracer, SCHEDULER_SHARD};
use simkern::time::Cycle;
use traffic::TrafficPattern;

use crate::config::{MultiConfig, ShardBackendKind};
use crate::link::BridgeLink;
use crate::sync::SyncBarrier;

/// Highest master identifier usable by shard traffic; identifiers above
/// it are reserved for the per-shard bridge replay masters
/// ([`bridge_master`]).
pub const MAX_TRAFFIC_MASTER_ID: u8 = 239;

/// The bridge replay master identifier of shard `shard`.
///
/// # Panics
///
/// Panics when the shard index leaves the reserved range.
#[must_use]
pub fn bridge_master(shard: usize) -> MasterId {
    assert!(shard < usize::from(u8::MAX - MAX_TRAFFIC_MASTER_ID));
    MasterId::new(u8::MAX - shard as u8)
}

/// One shard: a complete single-bus backend with its bridge port.
// The variant size difference (a TLM shard is a few KB of arbiter and
// recorder state, an LT shard a few hundred bytes) is irrelevant at one
// value per shard.
#[allow(clippy::large_enum_variant)]
enum ShardEngine {
    /// A transaction-level shard.
    Tlm(TlmSystem),
    /// A loosely-timed shard.
    Lt(LtSystem),
}

impl ShardEngine {
    fn run_until(&mut self, target: u64) {
        match self {
            ShardEngine::Tlm(s) => {
                s.run_until(Cycle::new(target));
            }
            ShardEngine::Lt(s) => {
                s.run_until(Cycle::new(target));
            }
        }
    }

    fn finished(&self) -> bool {
        match self {
            ShardEngine::Tlm(s) => BusModel::finished(s),
            ShardEngine::Lt(s) => BusModel::finished(s),
        }
    }

    /// Drains the egress log into `out` (cleared first), recycling the
    /// buffer's capacity across quanta instead of allocating per batch.
    fn drain_egress_into(&mut self, out: &mut Vec<amba::bridge::BridgeCrossing>) {
        match self {
            ShardEngine::Tlm(s) => s.drain_egress_into(out),
            ShardEngine::Lt(s) => s.drain_egress_into(out),
        }
    }

    fn inject_crossing(&mut self, txn: Transaction, release_at: u64, respond_to: Option<u8>) {
        match self {
            ShardEngine::Tlm(s) => s.inject_crossing(txn, Cycle::new(release_at), respond_to),
            ShardEngine::Lt(s) => s.inject_crossing(txn, release_at, respond_to),
        }
    }

    fn inject_response(&mut self, id: TransactionId, arrival: u64) {
        match self {
            ShardEngine::Tlm(s) => s.inject_response(id, Cycle::new(arrival)),
            ShardEngine::Lt(s) => s.inject_response(id, arrival),
        }
    }

    fn replayed(&self) -> ReplayStats {
        match self {
            ShardEngine::Tlm(s) => s.replayed(),
            ShardEngine::Lt(s) => s.replayed(),
        }
    }

    /// The shard's lookahead bound as a plain cycle number: the earliest
    /// cycle it could issue another crossing, `u64::MAX` when it never
    /// can from its current state.
    fn next_possible_crossing(&self) -> u64 {
        match self {
            ShardEngine::Tlm(s) => s.next_possible_crossing().map_or(u64::MAX, |c| c.value()),
            ShardEngine::Lt(s) => s.next_possible_crossing().map_or(u64::MAX, |c| c.value()),
        }
    }

    fn probe(&self) -> Probe {
        match self {
            ShardEngine::Tlm(s) => s.probe(),
            ShardEngine::Lt(s) => s.probe(),
        }
    }

    fn report(&mut self) -> SimReport {
        match self {
            ShardEngine::Tlm(s) => s.report(),
            ShardEngine::Lt(s) => s.report(),
        }
    }

    fn set_tracing(&mut self, enabled: bool) {
        match self {
            ShardEngine::Tlm(s) => s.set_tracing(enabled),
            ShardEngine::Lt(s) => s.set_tracing(enabled),
        }
    }

    fn set_trace_shard(&mut self, shard: u16) {
        match self {
            ShardEngine::Tlm(s) => s.set_trace_shard(shard),
            ShardEngine::Lt(s) => s.set_trace_shard(shard),
        }
    }

    fn take_trace_log(&mut self) -> TraceLog {
        match self {
            ShardEngine::Tlm(s) => s.take_trace_log(),
            ShardEngine::Lt(s) => s.take_trace_log(),
        }
    }
}

/// One routed crossing waiting to be injected into its destination shard.
#[derive(Debug, Clone, Copy)]
enum Delivery {
    /// A request leg: replay `txn` on the destination's bridge master;
    /// when `respond_to` names an origin, return a response leg there
    /// once the replay completes (non-posted read).
    Replay {
        /// The crossing transaction (original master id).
        txn: Transaction,
        /// Origin shard owed a response, if any.
        respond_to: Option<u8>,
    },
    /// A response leg: retire the master stalled on `txn.id`.
    Response {
        /// The original stalled transaction.
        txn: Transaction,
    },
}

impl Delivery {
    /// Deterministic tie-break rank within one release cycle: requests
    /// before responses, then master, then transaction id. For a
    /// posted-only platform every delivery is a replay, so the order is
    /// exactly the PR-4 `(cycle, master, id)` order.
    fn sort_key(&self) -> (u8, usize, u64) {
        match self {
            Delivery::Replay { txn, .. } => (0, txn.master.index(), txn.id.value()),
            Delivery::Response { txn } => (1, txn.master.index(), txn.id.value()),
        }
    }
}

/// Per-quantum exchange buffers, reused across barriers.
struct QuantumBuffers {
    /// Crossings drained from each shard this quantum.
    outbox: Vec<Vec<amba::bridge::BridgeCrossing>>,
    /// Routed deliveries per destination shard: `(release cycle, what)`.
    inbox: Vec<Vec<(u64, Delivery)>>,
    /// Each shard's completion flag, sampled after its quantum and before
    /// any injection.
    finished: Vec<bool>,
}

impl QuantumBuffers {
    fn new(shards: usize) -> Self {
        QuantumBuffers {
            outbox: (0..shards).map(|_| Vec::new()).collect(),
            inbox: (0..shards).map(|_| Vec::new()).collect(),
            finished: vec![false; shards],
        }
    }
}

/// Routes every drained crossing through its bridge link and into the
/// destination inbox. Deterministic: sources are visited in shard order,
/// crossings in local completion order, and each inbox is stably sorted
/// by release time. Request legs route to the shard owning the address;
/// response legs route back to the origin shard over the reverse-direction
/// link (sharing its FIFO with requests travelling that way). Shared
/// verbatim by the single-threaded reference and the threaded leader,
/// which is what makes the two modes probe-identical.
fn route_quantum(
    map: &WindowMap,
    links: &mut [BridgeLink],
    buffers: &mut QuantumBuffers,
    crossings: &mut u64,
    fifo_peak: &mut u64,
) {
    let shards = buffers.outbox.len();
    let QuantumBuffers { outbox, inbox, .. } = buffers;
    for src in 0..shards {
        // Drain in place: the outbox keeps its capacity for the next
        // quantum instead of bouncing an allocation per crossing batch.
        for crossing in outbox[src].drain(..) {
            let (dst, delivery) = match crossing.leg {
                CrossingLeg::Posted => (
                    usize::from(map.owner(crossing.txn.addr)),
                    Delivery::Replay {
                        txn: crossing.txn,
                        respond_to: None,
                    },
                ),
                CrossingLeg::NonPostedRead { origin } => (
                    usize::from(map.owner(crossing.txn.addr)),
                    Delivery::Replay {
                        txn: crossing.txn,
                        respond_to: Some(origin),
                    },
                ),
                CrossingLeg::ReadResponse { origin } => (
                    usize::from(origin),
                    Delivery::Response { txn: crossing.txn },
                ),
            };
            debug_assert_ne!(dst, src, "local transaction routed across the bridge");
            let link = &mut links[src * shards + dst];
            let (arrival, occupancy) = link.forward(crossing.issued_at.value());
            *crossings += 1;
            *fifo_peak = (*fifo_peak).max(occupancy as u64);
            inbox[dst].push((arrival, delivery));
        }
    }
    for inbox in inbox.iter_mut() {
        inbox.sort_by_key(|(at, delivery)| {
            let (rank, master, id) = delivery.sort_key();
            (*at, rank, master, id)
        });
    }
}

/// Shared state of one threaded advance: the exchange buffers plus the
/// routing state the leader thread updates between the two barrier waits
/// of each quantum.
struct Exchange {
    buffers: QuantumBuffers,
    links: Vec<BridgeLink>,
    crossings: u64,
    fifo_peak: u64,
    barrier: u64,
    stop: bool,
    /// Per-shard lookahead bounds deposited alongside the egress (only
    /// meaningful when lookahead is enabled).
    bounds: Vec<u64>,
    /// The barrier every worker runs to next, published by the leader
    /// between the two waits of a quantum.
    next_target: u64,
    barriers: u64,
    stretched: u64,
    cycles_gained: u64,
    /// The platform's scheduler-event tracer (barriers, stretches),
    /// moved in from the system for the duration of a threaded advance
    /// so the leader records into it under the exchange lock.
    tracer: Tracer,
}

/// The multi-bus AHB+ platform.
pub struct MultiSystem {
    kind: ModelKind,
    map: WindowMap,
    quantum: u64,
    max_cycles: u64,
    threaded: bool,
    spin_sync: bool,
    /// Adaptive lookahead: stretch the quantum past the fixed value when
    /// every shard proves no crossing can be issued before the stretched
    /// barrier. Off → the fixed schedule, byte for byte.
    lookahead: bool,
    /// Upper bound on one stretch past the fixed barrier position.
    max_stretch: u64,
    shards: Vec<ShardEngine>,
    bridge_ids: Vec<MasterId>,
    /// Directed links, indexed `source * shards + destination`.
    links: Vec<BridgeLink>,
    buffers: QuantumBuffers,
    /// The synchronized barrier clock (the platform's `now`).
    barrier: u64,
    /// The committed end of the quantum in flight: both execution modes
    /// run every shard to exactly this barrier next, so bounded stepping
    /// re-enters the identical schedule a one-shot run would take.
    next_target: u64,
    crossings: u64,
    fifo_peak: u64,
    /// Barriers taken / barriers stretched past the fixed quantum /
    /// simulated cycles gained by those stretches (sync observability —
    /// kept out of [`Probe`] so probe-equality stays a statement about
    /// simulated work, not scheduler policy).
    barriers: u64,
    stretched: u64,
    cycles_gained: u64,
    wall_seconds: f64,
    /// Records the platform's own scheduler events (barriers taken,
    /// lookahead stretches) under [`SCHEDULER_SHARD`]; the per-shard
    /// lifecycle streams live inside the shard engines.
    tracer: Tracer,
}

impl std::fmt::Debug for MultiSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSystem")
            .field("kind", &self.kind)
            .field("shards", &self.shards.len())
            .field("quantum", &self.quantum)
            .field("barrier", &self.barrier)
            .finish()
    }
}

impl MultiSystem {
    /// Builds a platform with one shard per traffic pattern: every master
    /// of pattern `s` lives on shard `s`, and every shard runs the same
    /// deterministic workload expansion as the single-bus backends (same
    /// `(id, profile, seed)` → same trace), so a sharded platform
    /// completes exactly the work a single-bus platform would on the union
    /// of the patterns. The platform's *shape* — backend per shard, window
    /// ownership, per-link timing, read-crossing mode — comes from the
    /// configuration's [`crate::Topology`].
    ///
    /// # Panics
    ///
    /// Panics when no patterns are given, when more than 16 shards are
    /// requested, when the topology fixes a different shard count, or
    /// when a master identifier collides with the reserved
    /// bridge/write-buffer range.
    #[must_use]
    pub fn from_shard_patterns(
        config: &MultiConfig,
        patterns: &[TrafficPattern],
        transactions_per_master: usize,
        seed: u64,
    ) -> Self {
        let shards = patterns.len();
        assert!(shards >= 1, "a platform needs at least one shard");
        assert!(shards <= 16, "bridge master ids support at most 16 shards");
        config.topology.validate_links(shards);
        let backends = config.topology.backends(shards);
        let map = config.topology.window_map(shards);
        let quantum = config.effective_quantum(shards);
        let bridge_ids: Vec<MasterId> = (0..shards).map(bridge_master).collect();
        let engines = patterns
            .iter()
            .enumerate()
            .map(|(shard, pattern)| {
                for (id, _) in &pattern.masters {
                    assert!(
                        id.index() <= usize::from(MAX_TRAFFIC_MASTER_ID),
                        "master {id} collides with the reserved bridge range"
                    );
                }
                let port = BridgePort {
                    map: map.clone(),
                    own: shard as u8,
                    slave_cycles: config.topology.default_link.slave_cycles,
                    master: bridge_ids[shard],
                    posted_reads: config.topology.posted_reads,
                };
                let masters = pattern.expand(transactions_per_master, seed);
                let params = config.topology.params_for(shard, &config.params);
                let ddr = config.topology.ddr_for(shard, config.ddr);
                match backends[shard] {
                    ShardBackendKind::Tlm => {
                        let tlm = TlmConfig {
                            params,
                            ddr,
                            max_cycles: config.max_cycles,
                            profiling: true,
                        };
                        ShardEngine::Tlm(TlmSystem::with_bridge(tlm, masters, port))
                    }
                    ShardBackendKind::Lt => {
                        let lt = LtConfig {
                            params,
                            ddr,
                            max_cycles: config.max_cycles,
                        };
                        ShardEngine::Lt(LtSystem::with_bridge(lt, masters, port))
                    }
                }
            })
            .collect();
        let links = (0..shards * shards)
            .map(|index| {
                let link = config.topology.link(index / shards, index % shards);
                BridgeLink::new(
                    link.crossing_latency,
                    link.forward_interval,
                    link.fifo_depth,
                )
            })
            .collect();
        // A lookahead-enabled uniform-TLM platform is its own spectrum
        // point (`sharded-tlm-la`): identical results, different wall
        // clock. Other shapes keep their kind — the lookahead flag rides
        // along as a scheduling policy of the same artifact key.
        let kind = match config.topology.model_kind(&backends) {
            ModelKind::ShardedTlm if config.lookahead => ModelKind::ShardedTlmLa,
            kind => kind,
        };
        MultiSystem {
            kind,
            map,
            quantum,
            max_cycles: config.max_cycles,
            threaded: config.threaded,
            spin_sync: config.effective_spin_sync(),
            lookahead: config.lookahead,
            max_stretch: config.effective_max_stretch(quantum),
            shards: engines,
            bridge_ids,
            links,
            buffers: QuantumBuffers::new(shards),
            barrier: 0,
            next_target: quantum.min(config.max_cycles),
            crossings: 0,
            fifo_peak: 0,
            barriers: 0,
            stretched: 0,
            cycles_gained: 0,
            wall_seconds: 0.0,
            tracer: Tracer::disabled(),
        }
    }

    /// Number of bus shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The effective synchronization quantum in cycles.
    #[must_use]
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Total crossings forwarded over all bridge links so far.
    #[must_use]
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// Barriers taken so far.
    #[must_use]
    pub fn barriers_taken(&self) -> u64 {
        self.barriers
    }

    /// Barriers whose quantum the lookahead stretched past the fixed
    /// value. Always 0 with lookahead disabled.
    #[must_use]
    pub fn barriers_stretched(&self) -> u64 {
        self.stretched
    }

    /// Simulated cycles gained by lookahead stretches: the sum over all
    /// stretched barriers of (stretched − fixed) quantum span.
    #[must_use]
    pub fn lookahead_cycles_gained(&self) -> u64 {
        self.cycles_gained
    }

    /// Per-shard observability: one [`Probe`] per shard, in shard order —
    /// the breakdown behind the aggregated [`MultiSystem::probe`].
    #[must_use]
    pub fn shard_probes(&self) -> Vec<Probe> {
        self.shards.iter().map(ShardEngine::probe).collect()
    }

    /// Enables or disables tracing on every shard plus the platform's
    /// scheduler-event stream. Each shard's events are tagged with its
    /// shard index; scheduler events carry [`SCHEDULER_SHARD`].
    pub fn set_tracing(&mut self, enabled: bool) {
        for (index, shard) in self.shards.iter_mut().enumerate() {
            shard.set_trace_shard(index as u16);
            shard.set_tracing(enabled);
        }
        self.tracer.set_shard(SCHEDULER_SHARD);
        self.tracer.set_enabled(enabled);
    }

    /// Drains and merges the per-shard trace streams with the scheduler
    /// events into one deterministic log (stable `(cycle, shard, seq)`
    /// order), filling the platform-level bridge counters. The merged
    /// stream is a pure function of the simulated schedule, so it is
    /// byte-identical across the single-threaded, threaded and spin-sync
    /// execution modes.
    pub fn take_trace_log(&mut self) -> TraceLog {
        let mut parts: Vec<TraceLog> = self
            .shards
            .iter_mut()
            .map(ShardEngine::take_trace_log)
            .collect();
        parts.push(self.tracer.take());
        let mut log = TraceLog::merge(parts);
        log.counters.crossings = self.crossings;
        log.counters.bridge_fifo_peak = log.counters.bridge_fifo_peak.max(self.fifo_peak);
        log
    }

    /// Current synchronized time (the barrier clock).
    #[must_use]
    pub fn now(&self) -> Cycle {
        Cycle::new(self.barrier)
    }

    /// `true` once every shard has drained (including all delivered
    /// bridge replays) or the cycle limit is reached.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.barrier >= self.max_cycles || self.shards.iter().all(ShardEngine::finished)
    }

    /// Advances the platform in whole quanta until the barrier clock
    /// reaches `target`, the workload drains everywhere, or the cycle
    /// limit is hit. May overshoot `target` by at most one quantum (the
    /// barrier discipline never stops inside a quantum); with lookahead
    /// enabled a quantum may span up to the configured stretch bound.
    pub fn run_until(&mut self, target: Cycle) -> Cycle {
        let wall = Instant::now();
        let end = target.value().min(self.max_cycles);
        if self.threaded {
            self.advance_threaded(end);
        } else {
            self.advance_single(end);
        }
        self.wall_seconds += wall.elapsed().as_secs_f64();
        Cycle::new(self.barrier)
    }

    /// The barrier the platform commits to after finishing the quantum
    /// ending at `next`: the fixed position, or — when lookahead is on
    /// and `quiet` (nothing was routed this barrier, so no shard state
    /// is about to change) — the stretched position justified by the
    /// minimum shard bound. A crossing issued at cycle `t ≥ bound`
    /// arrives no earlier than `t + quantum` (the quantum never exceeds
    /// the minimum link latency), so advancing every shard to
    /// `bound + quantum` without exchanging is causally safe.
    ///
    /// Returns `(target, gained)` where `gained` is how many cycles the
    /// stretch added over the fixed schedule (zero when not stretched).
    fn commit_next_target(
        lookahead: bool,
        quiet: bool,
        bound: u64,
        next: u64,
        quantum: u64,
        max_stretch: u64,
        max_cycles: u64,
    ) -> (u64, u64) {
        let fixed = (next + quantum).min(max_cycles);
        if !(lookahead && quiet) {
            return (fixed, 0);
        }
        let target = bound
            .saturating_add(quantum)
            .min(next.saturating_add(max_stretch))
            .min(max_cycles)
            .max(fixed);
        (target, target - fixed)
    }

    /// The single-threaded reference schedule: per quantum, run every
    /// shard in order, route, inject, repeat. The barrier each iteration
    /// runs to was committed at the previous barrier (`next_target`), so
    /// the schedule is a pure function of the shard states — identical
    /// in both execution modes and across bounded stepping.
    fn advance_single(&mut self, end: u64) {
        if self.barrier >= end || self.is_finished() {
            return;
        }
        loop {
            let next = self.next_target;
            let mut bound = u64::MAX;
            for (index, shard) in self.shards.iter_mut().enumerate() {
                shard.run_until(next);
                shard.drain_egress_into(&mut self.buffers.outbox[index]);
                self.buffers.finished[index] = shard.finished();
                if self.lookahead {
                    bound = bound.min(shard.next_possible_crossing());
                }
            }
            route_quantum(
                &self.map,
                &mut self.links,
                &mut self.buffers,
                &mut self.crossings,
                &mut self.fifo_peak,
            );
            self.barrier = next;
            self.barriers += 1;
            let quiet = self.buffers.inbox.iter().all(Vec::is_empty);
            let (target, gained) = Self::commit_next_target(
                self.lookahead,
                quiet,
                bound,
                next,
                self.quantum,
                self.max_stretch,
                self.max_cycles,
            );
            self.next_target = target;
            self.tracer.barrier(next, target.saturating_sub(next));
            if gained > 0 {
                self.stretched += 1;
                self.cycles_gained += gained;
                self.tracer.stretch(next, gained);
            }
            let drained = self.buffers.finished.iter().all(|&f| f) && quiet;
            let stop = drained || next >= end;
            for (index, shard) in self.shards.iter_mut().enumerate() {
                for (at, delivery) in self.buffers.inbox[index].drain(..) {
                    match delivery {
                        Delivery::Replay { txn, respond_to } => {
                            shard.inject_crossing(txn, at, respond_to);
                        }
                        Delivery::Response { txn } => shard.inject_response(txn.id, at),
                    }
                }
            }
            if stop {
                break;
            }
        }
    }

    /// The threaded schedule: one worker per shard, two barrier waits per
    /// quantum (deposit egress → leader routes → inject), executing the
    /// *same* exchange code as [`MultiSystem::advance_single`] on the
    /// same barrier clock — probe-identical by construction.
    fn advance_threaded(&mut self, end: u64) {
        if self.barrier >= end || self.is_finished() {
            return;
        }
        let shards = self.shards.len();
        let quantum = self.quantum;
        let max = self.max_cycles;
        let lookahead = self.lookahead;
        let max_stretch = self.max_stretch;
        let map = self.map.clone();
        let map = &map;
        let first = self.next_target;
        let sync = SyncBarrier::new(shards, self.spin_sync);
        let exchange = Mutex::new(Exchange {
            buffers: std::mem::replace(&mut self.buffers, QuantumBuffers::new(0)),
            links: std::mem::take(&mut self.links),
            crossings: self.crossings,
            fifo_peak: self.fifo_peak,
            barrier: self.barrier,
            stop: false,
            bounds: vec![u64::MAX; shards],
            next_target: first,
            barriers: self.barriers,
            stretched: self.stretched,
            cycles_gained: self.cycles_gained,
            tracer: std::mem::replace(&mut self.tracer, Tracer::disabled()),
        });
        std::thread::scope(|scope| {
            for (index, shard) in self.shards.iter_mut().enumerate() {
                let sync = &sync;
                let exchange = &exchange;
                scope.spawn(move || {
                    let mut next = first;
                    // Worker-local scratch buffers, swapped with the shared
                    // exchange slots under the lock: the egress and inbox
                    // capacities ping-pong between worker and leader
                    // instead of reallocating every quantum.
                    let mut egress = Vec::new();
                    let mut batch = Vec::new();
                    loop {
                        shard.run_until(next);
                        shard.drain_egress_into(&mut egress);
                        let finished = shard.finished();
                        let bound = if lookahead {
                            shard.next_possible_crossing()
                        } else {
                            u64::MAX
                        };
                        {
                            let mut guard = exchange.lock().expect("no panics hold the lock");
                            std::mem::swap(&mut guard.buffers.outbox[index], &mut egress);
                            guard.buffers.finished[index] = finished;
                            guard.bounds[index] = bound;
                        }
                        if sync.wait() {
                            let mut guard = exchange.lock().expect("no panics hold the lock");
                            let guard = &mut *guard;
                            route_quantum(
                                map,
                                &mut guard.links,
                                &mut guard.buffers,
                                &mut guard.crossings,
                                &mut guard.fifo_peak,
                            );
                            guard.barrier = next;
                            guard.barriers += 1;
                            let quiet = guard.buffers.inbox.iter().all(Vec::is_empty);
                            let bound = guard.bounds.iter().copied().min().unwrap_or(u64::MAX);
                            let (target, gained) = MultiSystem::commit_next_target(
                                lookahead,
                                quiet,
                                bound,
                                next,
                                quantum,
                                max_stretch,
                                max,
                            );
                            guard.next_target = target;
                            guard.tracer.barrier(next, target.saturating_sub(next));
                            if gained > 0 {
                                guard.stretched += 1;
                                guard.cycles_gained += gained;
                                guard.tracer.stretch(next, gained);
                            }
                            let drained = guard.buffers.finished.iter().all(|&f| f) && quiet;
                            guard.stop = drained || next >= end;
                        }
                        sync.wait();
                        let (stop, following) = {
                            let mut guard = exchange.lock().expect("no panics hold the lock");
                            std::mem::swap(&mut guard.buffers.inbox[index], &mut batch);
                            (guard.stop, guard.next_target)
                        };
                        for (at, delivery) in batch.drain(..) {
                            match delivery {
                                Delivery::Replay { txn, respond_to } => {
                                    shard.inject_crossing(txn, at, respond_to);
                                }
                                Delivery::Response { txn } => shard.inject_response(txn.id, at),
                            }
                        }
                        if stop {
                            break;
                        }
                        next = following;
                    }
                });
            }
        });
        let exchange = exchange.into_inner().expect("workers have exited");
        self.buffers = exchange.buffers;
        self.links = exchange.links;
        self.crossings = exchange.crossings;
        self.fifo_peak = exchange.fifo_peak;
        self.barrier = exchange.barrier;
        self.next_target = exchange.next_target;
        self.barriers = exchange.barriers;
        self.stretched = exchange.stretched;
        self.cycles_gained = exchange.cycles_gained;
        self.tracer = exchange.tracer;
    }

    /// Aggregated snapshot: the sum of the shard probes with every
    /// workload transaction counted exactly once (bridge replays are
    /// subtracted — they are remote bus occupancy for work already
    /// counted at its source), plus the platform-level bridge statistics.
    #[must_use]
    pub fn probe(&self) -> Probe {
        let mut aggregate = Probe::default();
        let mut replays = ReplayStats::default();
        for shard in &self.shards {
            let probe = shard.probe();
            aggregate.cycle = aggregate.cycle.max(probe.cycle);
            aggregate.transactions += probe.transactions;
            aggregate.bytes += probe.bytes;
            aggregate.data_beats += probe.data_beats;
            aggregate.busy_cycles += probe.busy_cycles;
            aggregate.write_buffer_fill += probe.write_buffer_fill;
            aggregate.write_buffer_absorbed += probe.write_buffer_absorbed;
            aggregate.write_buffer_drained += probe.write_buffer_drained;
            aggregate.write_buffer_peak += probe.write_buffer_peak;
            aggregate.dram_row_hits += probe.dram_row_hits;
            aggregate.dram_prepared_hits += probe.dram_prepared_hits;
            aggregate.dram_accesses += probe.dram_accesses;
            aggregate.assertion_errors += probe.assertion_errors;
            aggregate.assertion_warnings += probe.assertion_warnings;
            let replayed = shard.replayed();
            replays.transactions += replayed.transactions;
            replays.bytes += replayed.bytes;
            replays.data_beats += replayed.data_beats;
        }
        aggregate.transactions -= replays.transactions;
        aggregate.bytes -= replays.bytes;
        aggregate.data_beats -= replays.data_beats;
        aggregate.bridge_crossings = self.crossings;
        aggregate.bridge_fifo_peak = self.fifo_peak;
        aggregate
    }

    /// The aggregated metric report: per-master rows merged over all
    /// shards (the bridge replay ports are internal plumbing and are
    /// omitted), bus metrics summed with replays subtracted from the
    /// completed-work counters, and `total_cycles` the aggregate bus
    /// cycles simulated across the fabric.
    ///
    /// # Panics
    ///
    /// Panics when two shards share a master identifier (the sharded
    /// pattern constructors guarantee uniqueness).
    #[must_use]
    pub fn report(&mut self) -> SimReport {
        let mut masters = BTreeMap::new();
        let mut bus = BusMetrics::default();
        let mut total_cycles = 0u64;
        let mut replays = ReplayStats::default();
        for index in 0..self.shards.len() {
            let replayed = self.shards[index].replayed();
            replays.transactions += replayed.transactions;
            replays.data_beats += replayed.data_beats;
            let report = self.shards[index].report();
            total_cycles += report.total_cycles;
            for (id, metrics) in report.masters {
                if id == self.bridge_ids[index] {
                    continue;
                }
                assert!(
                    masters.insert(id, metrics).is_none(),
                    "master {id} appears on more than one shard"
                );
            }
            bus.busy_cycles += report.bus.busy_cycles;
            bus.contention_cycles += report.bus.contention_cycles;
            bus.transactions += report.bus.transactions;
            bus.data_beats += report.bus.data_beats;
            bus.write_buffer_hits += report.bus.write_buffer_hits;
            bus.write_buffer_peak += report.bus.write_buffer_peak;
            bus.dram_row_hits += report.bus.dram_row_hits;
            bus.dram_accesses += report.bus.dram_accesses;
            bus.assertion_errors += report.bus.assertion_errors;
        }
        bus.transactions = bus.transactions.saturating_sub(replays.transactions);
        bus.data_beats = bus.data_beats.saturating_sub(replays.data_beats);
        SimReport {
            model: self.kind,
            total_cycles,
            wall_seconds: self.wall_seconds,
            masters,
            bus,
        }
    }

    /// Runs the platform to completion (or the cycle limit) and reports.
    pub fn run(&mut self) -> SimReport {
        self.run_until(Cycle::MAX);
        self.report()
    }
}

impl BusModel for MultiSystem {
    fn kind(&self) -> ModelKind {
        self.kind
    }

    fn now(&self) -> Cycle {
        MultiSystem::now(self)
    }

    fn finished(&self) -> bool {
        self.is_finished()
    }

    fn run_until(&mut self, target: Cycle) -> Cycle {
        MultiSystem::run_until(self, target)
    }

    fn probe(&self) -> Probe {
        MultiSystem::probe(self)
    }

    fn report(&mut self) -> SimReport {
        MultiSystem::report(self)
    }

    fn set_tracing(&mut self, enabled: bool) {
        MultiSystem::set_tracing(self, enabled);
    }

    fn take_trace(&mut self) -> Option<TraceLog> {
        self.tracer.is_enabled().then(|| self.take_trace_log())
    }

    fn sync_stats(&self) -> Option<SyncStats> {
        let mean_quantum = if self.barriers == 0 {
            0.0
        } else {
            self.barrier as f64 / self.barriers as f64
        };
        Some(SyncStats {
            barriers: self.barriers,
            stretched: self.stretched,
            cycles_gained: self.cycles_gained,
            mean_quantum,
        })
    }
}

/// Splits a single-bus traffic pattern into `shards` per-shard patterns,
/// assigning master `i` to shard `i % shards` (a pattern with fewer
/// masters than shards leaves the tail shards with only their bridge
/// port). Master ids and profiles are untouched, so the union of the
/// sharded workload equals the single-bus workload exactly.
///
/// # Panics
///
/// Panics when `shards` is zero.
#[must_use]
pub fn partition_round_robin(pattern: &TrafficPattern, shards: usize) -> Vec<TrafficPattern> {
    assert!(shards >= 1, "a platform needs at least one shard");
    let mut parts: Vec<TrafficPattern> = (0..shards)
        .map(|_| TrafficPattern {
            name: pattern.name,
            masters: Vec::new(),
        })
        .collect();
    for (index, entry) in pattern.masters.iter().enumerate() {
        parts[index % shards].masters.push(entry.clone());
    }
    parts
}

/// Splits a single-bus traffic pattern into `shards` per-shard patterns,
/// assigning every master to the shard that *owns its region* under the
/// interleaved window map — the zero-crossing partition: each master's
/// traffic stays on its own shard, so the sharded platform is pure
/// scaling (same work, no bridge traffic).
///
/// # Panics
///
/// Panics when `shards` is zero.
#[must_use]
pub fn partition_by_window(
    pattern: &TrafficPattern,
    shards: usize,
    window_shift: u32,
) -> Vec<TrafficPattern> {
    assert!(shards >= 1, "a platform needs at least one shard");
    let map = ShardMap::new(window_shift, shards as u8);
    let mut parts: Vec<TrafficPattern> = (0..shards)
        .map(|_| TrafficPattern {
            name: pattern.name,
            masters: Vec::new(),
        })
        .collect();
    for entry in &pattern.masters {
        parts[usize::from(map.owner(entry.1.region_base))]
            .masters
            .push(entry.clone());
    }
    parts
}
