//! Quantum-barrier synchronization primitives for the threaded scheduler.
//!
//! The conservative quantum schedule needs one barrier rendezvous per
//! exchange; `std::sync::Barrier` parks threads in the kernel, which
//! costs a few microseconds per wait — noticeable when quanta are short
//! and shards drain fast. [`SpinBarrier`] trades CPU for latency: threads
//! busy-wait on a generation counter, cutting the per-quantum sync cost
//! roughly an order of magnitude on dedicated cores. It is only worth it
//! when every shard has a core to itself, which is why the platform
//! defaults it off on hosts with ≤ 2 cores ([`default_spin_sync`]).
//!
//! Both barriers provide the same contract — every participant blocks
//! until all have arrived, exactly one is told it is the leader — so the
//! exchange schedule (and therefore the simulation result) is identical
//! whichever is used; only wall-clock time changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// A busy-waiting barrier: `wait` spins until all `count` participants
/// arrive. The last arriver is the leader of the round.
#[derive(Debug)]
pub struct SpinBarrier {
    count: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `count` participants.
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero.
    #[must_use]
    pub fn new(count: usize) -> Self {
        assert!(count >= 1, "a barrier needs at least one participant");
        SpinBarrier {
            count,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks (spinning) until every participant has called `wait` for
    /// this round. Returns `true` on exactly one participant — the round
    /// leader (the last arriver).
    ///
    /// The wait is a bounded spin burst followed by `yield_now`: on
    /// dedicated cores the burst is all that ever runs (the fast path the
    /// barrier exists for), while on an oversubscribed host the yield
    /// hands the core to the very shard worker being waited on instead of
    /// burning the timeslice.
    pub fn wait(&self) -> bool {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.count {
            // Leader: reset the arrival count for the next round before
            // releasing the waiters of this one.
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
            true
        } else {
            while self.generation.load(Ordering::Acquire) == generation {
                for _ in 0..64 {
                    std::hint::spin_loop();
                }
                if self.generation.load(Ordering::Acquire) != generation {
                    break;
                }
                std::thread::yield_now();
            }
            false
        }
    }
}

/// The barrier a threaded advance synchronizes on: blocking
/// (`std::sync::Barrier`) or spinning ([`SpinBarrier`]). Both run the
/// identical rendezvous schedule with one leader per round.
#[derive(Debug)]
pub enum SyncBarrier {
    /// Kernel-parking barrier (safe default on shared or small hosts).
    Blocking(Barrier),
    /// Busy-waiting barrier (fastest on dedicated cores).
    Spin(SpinBarrier),
}

impl SyncBarrier {
    /// A barrier for `count` participants, spinning when `spin` is set.
    #[must_use]
    pub fn new(count: usize, spin: bool) -> Self {
        if spin {
            SyncBarrier::Spin(SpinBarrier::new(count))
        } else {
            SyncBarrier::Blocking(Barrier::new(count))
        }
    }

    /// Waits for the round; `true` on the round's single leader.
    pub fn wait(&self) -> bool {
        match self {
            SyncBarrier::Blocking(barrier) => barrier.wait().is_leader(),
            SyncBarrier::Spin(barrier) => barrier.wait(),
        }
    }
}

/// The default spin-sync policy: spin only when the host has more than
/// two cores (on ≤ 2 cores the spinners would steal cycles from the very
/// shard workers they are waiting on).
#[must_use]
pub fn default_spin_sync() -> bool {
    std::thread::available_parallelism().is_ok_and(|p| p.get() > 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spin_barrier_elects_one_leader_per_round() {
        let threads = 4;
        let rounds = 50;
        let barrier = SpinBarrier::new(threads);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..rounds {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), rounds);
    }

    #[test]
    fn spin_barrier_orders_rounds() {
        // Each round's increments must all land before the next round
        // starts; with the barrier between increments the counter can
        // never be observed mid-round after a wait returns.
        let threads = 3;
        let barrier = SpinBarrier::new(threads);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for round in 1..=20u64 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        assert_eq!(counter.load(Ordering::Relaxed), round * threads as u64);
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn sync_barrier_wraps_both_flavours() {
        for spin in [false, true] {
            let barrier = SyncBarrier::new(2, spin);
            let leaders = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(leaders.load(Ordering::Relaxed), 1, "spin={spin}");
        }
    }

    #[test]
    fn single_participant_barrier_is_always_leader() {
        let barrier = SpinBarrier::new(1);
        assert!(barrier.wait());
        assert!(barrier.wait());
    }
}
