//! One directed AHB-to-AHB bridge link: a bounded request FIFO with a
//! fixed crossing latency and serialized forwarding.
//!
//! The model is deliberately simple and fully deterministic:
//!
//! * a crossing *enters* the FIFO when its local posting transfer
//!   completes — unless the FIFO is full, in which case admission waits
//!   until the oldest in-flight request has been forwarded
//!   (back-pressure);
//! * it is *forwarded* (released to the remote bridge master) no earlier
//!   than `crossing_latency` cycles after admission, and no earlier than
//!   `forward_interval` cycles after the previous forward on this link
//!   (the remote port serializes);
//! * forwards therefore leave in admission order with monotone release
//!   times, which is what lets the platform deliver them to the remote
//!   shard as ordinary absolute-release trace items.

use std::collections::VecDeque;

/// One directed bridge link (source shard → destination shard).
#[derive(Debug, Clone)]
pub struct BridgeLink {
    latency: u64,
    interval: u64,
    depth: usize,
    /// Forward times of the most recent `depth` crossings — the sliding
    /// window that realizes both the FIFO bound (front = the admission
    /// gate) and the serialization (back = the previous forward).
    recent: VecDeque<u64>,
}

impl BridgeLink {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics on a zero-latency, zero-depth or zero-interval link: the
    /// latency is the platform's synchronization quantum (must be ≥ 1), a
    /// FIFO needs at least one slot, and forwarding needs to advance time.
    #[must_use]
    pub fn new(latency: u64, interval: u64, depth: usize) -> Self {
        assert!(latency >= 1, "crossing latency must be at least one cycle");
        assert!(interval >= 1, "forward interval must be at least one cycle");
        assert!(depth >= 1, "the request FIFO needs at least one slot");
        BridgeLink {
            latency,
            interval,
            depth,
            recent: VecDeque::with_capacity(depth + 1),
        }
    }

    /// Routes one crossing issued (locally completed) at `issued_at`.
    /// Returns its forward time — the cycle the remote replay is released
    /// — and the FIFO occupancy at admission (for the peak statistic).
    pub fn forward(&mut self, issued_at: u64) -> (u64, usize) {
        let gate = if self.recent.len() == self.depth {
            *self.recent.front().expect("full window is non-empty")
        } else {
            0
        };
        let admitted = issued_at.max(gate);
        let serialized = self.recent.back().map_or(0, |last| last + self.interval);
        let forwarded = (admitted + self.latency).max(serialized);
        // Requests still in flight (not yet forwarded) at admission time,
        // plus the one being admitted.
        let occupancy = self.recent.iter().filter(|&&f| f > admitted).count() + 1;
        self.recent.push_back(forwarded);
        if self.recent.len() > self.depth {
            self.recent.pop_front();
        }
        (forwarded, occupancy)
    }

    /// The link's crossing latency.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_idle_link_pays_exactly_the_crossing_latency() {
        let mut link = BridgeLink::new(64, 4, 8);
        assert_eq!(link.forward(100), (164, 1));
        assert_eq!(link.forward(1_000), (1_064, 1));
    }

    #[test]
    fn back_to_back_crossings_serialize_on_the_forward_interval() {
        let mut link = BridgeLink::new(64, 4, 8);
        let (first, _) = link.forward(100);
        let (second, occupancy) = link.forward(100);
        assert_eq!(second, first + 4);
        assert_eq!(occupancy, 2);
        // Forward times are monotone in admission order.
        let (third, _) = link.forward(101);
        assert!(third > second);
    }

    #[test]
    fn a_full_fifo_back_pressures_admission() {
        let mut link = BridgeLink::new(10, 1, 2);
        let (f0, _) = link.forward(0); // forwarded at 10
        let (f1, _) = link.forward(0); // forwarded at 11
        assert_eq!((f0, f1), (10, 11));
        // Third crossing at cycle 0: both slots are taken until cycle 10,
        // so admission waits for the oldest forward.
        let (f2, occupancy) = link.forward(0);
        assert_eq!(f2, 20, "admitted at 10, forwarded latency later");
        assert!(occupancy <= 2, "occupancy never exceeds the depth");
    }

    #[test]
    fn occupancy_is_bounded_by_the_depth() {
        let mut link = BridgeLink::new(50, 1, 4);
        for issue in 0..100 {
            let (_, occupancy) = link.forward(issue);
            assert!(occupancy <= 4, "occupancy {occupancy} exceeds depth");
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_depth_panics() {
        let _ = BridgeLink::new(10, 1, 0);
    }
}
