//! Declarative multi-bus platform topology.
//!
//! A [`Topology`] is the complete *shape* of a multi-bus platform as
//! plain data: which backend each shard runs (uniform or heterogeneous —
//! hot shards cycle-accurate `tlm`, cold shards loosely-timed `lt`), how
//! window ownership decodes (round-robin interleave or an explicit,
//! non-uniform owner table), the timing and capacity of every directed
//! bridge link (a shared default plus per-link overrides for asymmetric
//! fabrics), and whether remote reads cross posted or non-posted. The
//! whole stack consumes it: the platform builder instantiates shards and
//! links from it, both backends' bridge ports decode the same
//! [`WindowMap`] it resolves to, and the synchronization quantum is
//! derived from its slowest-safe value (the minimum crossing latency over
//! all links).
//!
//! ```
//! use ahb_multi::{BridgeConfig, ShardBackendKind, Topology};
//!
//! // Two cycle-accurate shards in front of two loosely-timed ones, with
//! // a slow return path on one link and non-posted reads.
//! let topology = Topology::heterogeneous(vec![
//!     ShardBackendKind::Tlm,
//!     ShardBackendKind::Tlm,
//!     ShardBackendKind::Lt,
//!     ShardBackendKind::Lt,
//! ])
//! .with_link(2, 0, BridgeConfig { crossing_latency: 128, ..BridgeConfig::ahb_plus() })
//! .with_posted_reads(false);
//! assert_eq!(topology.shard_count(), Some(4));
//! assert_eq!(topology.min_crossing_latency(4), 96);
//! ```

use amba::bridge::WindowMap;
use amba::params::AhbPlusParams;
use analysis::report::ModelKind;
use ddrc::DdrConfig;

use crate::config::{BridgeConfig, ShardBackendKind};

/// Which backend each shard of a platform instantiates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSet {
    /// Every shard runs the same backend; the shard *count* comes from
    /// the per-shard traffic patterns handed to the builder.
    Uniform(ShardBackendKind),
    /// One backend per shard (a heterogeneous platform); the vector
    /// length fixes the shard count.
    PerShard(Vec<ShardBackendKind>),
}

/// How window ownership is decoded across the shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowSpec {
    /// Window `w` is owned by shard `w % shards` (the uniform layout).
    Interleaved {
        /// Log2 of the window size in bytes.
        window_shift: u32,
    },
    /// Explicit per-window owner table covering the full address space —
    /// non-uniform ownership (see [`WindowMap::explicit`] for the
    /// validity rules).
    Explicit {
        /// Log2 of the window size in bytes.
        window_shift: u32,
        /// Owner shard of every window, `1 << (32 - window_shift)`
        /// entries.
        owners: Vec<u8>,
    },
}

/// The declarative shape of a multi-bus platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Backend selection per shard.
    pub shards: ShardSet,
    /// Window-ownership decode.
    pub window: WindowSpec,
    /// Link timing/capacity used for every directed link without an
    /// override.
    pub default_link: BridgeConfig,
    /// Per-link overrides `(source shard, destination shard, config)` —
    /// asymmetric latency or FIFO depth between specific shard pairs.
    pub links: Vec<(usize, usize, BridgeConfig)>,
    /// `true` → remote reads cross posted (split-transaction prefetch, no
    /// response traffic — the classic bridge). `false` → remote reads are
    /// non-posted: the source master stalls until the response leg
    /// crosses back and retires the transfer.
    pub posted_reads: bool,
    /// Per-shard bus-parameter overrides `(shard, params)` — shards
    /// without an override inherit the platform-wide
    /// `MultiConfig::params` (later overrides of the same shard win).
    pub shard_params: Vec<(usize, AhbPlusParams)>,
    /// Per-shard DDR overrides `(shard, config)` — a slower cold-shard
    /// memory, a different geometry behind one bridge, etc. Shards
    /// without an override inherit `MultiConfig::ddr`.
    pub shard_ddr: Vec<(usize, DdrConfig)>,
}

impl Topology {
    /// A uniform topology: every shard runs `backend`, interleaved
    /// windows at the standard shift, uniform default links, posted
    /// reads. This is exactly the PR-4 platform shape — a platform built
    /// from it is results-identical to the pre-topology builder.
    #[must_use]
    pub fn uniform(backend: ShardBackendKind) -> Self {
        Topology {
            shards: ShardSet::Uniform(backend),
            window: WindowSpec::Interleaved {
                window_shift: traffic::SHARD_WINDOW_SHIFT,
            },
            default_link: BridgeConfig::ahb_plus(),
            links: Vec::new(),
            posted_reads: true,
            shard_params: Vec::new(),
            shard_ddr: Vec::new(),
        }
    }

    /// A heterogeneous topology: shard `i` runs `backends[i]`.
    ///
    /// # Panics
    ///
    /// Panics when `backends` is empty.
    #[must_use]
    pub fn heterogeneous(backends: Vec<ShardBackendKind>) -> Self {
        assert!(!backends.is_empty(), "a platform needs at least one shard");
        Topology {
            shards: ShardSet::PerShard(backends),
            ..Topology::uniform(ShardBackendKind::Tlm)
        }
    }

    /// The canonical heterogeneous platform: two cycle-accurate `tlm`
    /// shards (the hot half) in front of two loosely-timed `lt` shards
    /// (the cold half), interleaved windows, posted reads — the
    /// `sharded-het` evaluation configuration.
    #[must_use]
    pub fn het_2x2() -> Self {
        Topology::heterogeneous(vec![
            ShardBackendKind::Tlm,
            ShardBackendKind::Tlm,
            ShardBackendKind::Lt,
            ShardBackendKind::Lt,
        ])
    }

    /// The canonical non-posted-read platform: two `tlm` shards whose
    /// remote reads stall the issuing master until the response leg
    /// returns — the `sharded-tlm-reads` evaluation configuration.
    #[must_use]
    pub fn tlm_non_posted_reads() -> Self {
        Topology::heterogeneous(vec![ShardBackendKind::Tlm; 2]).with_posted_reads(false)
    }

    /// The canonical non-uniform-window platform: two `tlm` shards where
    /// shard 0 owns three windows out of every four (shard 1 only every
    /// fourth) — the `sharded-skew` evaluation configuration.
    #[must_use]
    pub fn tlm_skewed_windows() -> Self {
        let shift = traffic::SHARD_WINDOW_SHIFT;
        let owners = (0..1u32 << (32 - shift))
            .map(|window| u8::from(window % 4 == 3))
            .collect();
        Topology::heterogeneous(vec![ShardBackendKind::Tlm; 2]).with_window_owners(shift, owners)
    }

    /// Returns a copy with a different interleaved window shift.
    #[must_use]
    pub fn with_window_shift(mut self, window_shift: u32) -> Self {
        self.window = WindowSpec::Interleaved { window_shift };
        self
    }

    /// Returns a copy with an explicit (possibly non-uniform) owner
    /// table; validity is checked when the map is resolved.
    #[must_use]
    pub fn with_window_owners(mut self, window_shift: u32, owners: Vec<u8>) -> Self {
        self.window = WindowSpec::Explicit {
            window_shift,
            owners,
        };
        self
    }

    /// Returns a copy with a different default link configuration.
    #[must_use]
    pub fn with_default_link(mut self, link: BridgeConfig) -> Self {
        self.default_link = link;
        self
    }

    /// Returns a copy overriding the directed link `source → destination`
    /// (later overrides of the same pair win). The override applies to
    /// the link's crossing latency, FIFO depth and forward interval;
    /// `slave_cycles` is a property of each shard's bridge *slave window*
    /// (paid before the destination is decoded) and is always taken from
    /// [`Topology::default_link`]. Indices are validated against the
    /// shard count when a platform is built
    /// ([`Topology::validate_links`]).
    #[must_use]
    pub fn with_link(mut self, source: usize, destination: usize, link: BridgeConfig) -> Self {
        self.links.push((source, destination, link));
        self
    }

    /// Checks every link, bus-parameter and DDR override against a
    /// `shards`-shard platform: a mistyped index would otherwise be
    /// stored but never consulted, silently measuring the uniform
    /// platform.
    ///
    /// # Panics
    ///
    /// Panics when an override names a shard `>= shards` or a self-link.
    pub fn validate_links(&self, shards: usize) {
        for &(source, destination, _) in &self.links {
            assert!(
                source < shards && destination < shards,
                "link override {source}->{destination} names a shard outside 0..{shards}"
            );
            assert_ne!(
                source, destination,
                "link override {source}->{destination} is a self-link (never routed)"
            );
        }
        for (shard, _) in &self.shard_params {
            assert!(
                *shard < shards,
                "bus-parameter override names shard {shard} outside 0..{shards}"
            );
        }
        for (shard, _) in &self.shard_ddr {
            assert!(
                *shard < shards,
                "DDR override names shard {shard} outside 0..{shards}"
            );
        }
    }

    /// Returns a copy with the read-crossing mode set.
    #[must_use]
    pub fn with_posted_reads(mut self, posted_reads: bool) -> Self {
        self.posted_reads = posted_reads;
        self
    }

    /// Returns a copy overriding shard `shard`'s bus parameters (later
    /// overrides of the same shard win). Indices are validated against
    /// the shard count when a platform is built.
    #[must_use]
    pub fn with_shard_params(mut self, shard: usize, params: AhbPlusParams) -> Self {
        self.shard_params.push((shard, params));
        self
    }

    /// Returns a copy overriding shard `shard`'s DDR configuration (later
    /// overrides of the same shard win).
    #[must_use]
    pub fn with_shard_ddr(mut self, shard: usize, ddr: DdrConfig) -> Self {
        self.shard_ddr.push((shard, ddr));
        self
    }

    /// The bus parameters of shard `shard`: the last matching override,
    /// or the platform-wide `default`.
    #[must_use]
    pub fn params_for(&self, shard: usize, default: &AhbPlusParams) -> AhbPlusParams {
        self.shard_params
            .iter()
            .rev()
            .find(|(s, _)| *s == shard)
            .map_or_else(|| default.clone(), |(_, params)| params.clone())
    }

    /// The DDR configuration of shard `shard`: the last matching
    /// override, or the platform-wide `default`.
    #[must_use]
    pub fn ddr_for(&self, shard: usize, default: DdrConfig) -> DdrConfig {
        self.shard_ddr
            .iter()
            .rev()
            .find(|(s, _)| *s == shard)
            .map_or(default, |(_, ddr)| *ddr)
    }

    /// The shard count this topology fixes, or `None` when it is uniform
    /// (count then comes from the per-shard traffic patterns).
    #[must_use]
    pub fn shard_count(&self) -> Option<usize> {
        match &self.shards {
            ShardSet::Uniform(_) => None,
            ShardSet::PerShard(backends) => Some(backends.len()),
        }
    }

    /// The backend of every shard of a `shards`-shard platform.
    ///
    /// # Panics
    ///
    /// Panics when the topology fixes a different shard count.
    #[must_use]
    pub fn backends(&self, shards: usize) -> Vec<ShardBackendKind> {
        match &self.shards {
            ShardSet::Uniform(backend) => vec![*backend; shards],
            ShardSet::PerShard(backends) => {
                assert_eq!(
                    backends.len(),
                    shards,
                    "topology fixes {} shards but {} patterns were given",
                    backends.len(),
                    shards
                );
                backends.clone()
            }
        }
    }

    /// Resolves the window spec into the decode map of a `shards`-shard
    /// platform.
    ///
    /// # Panics
    ///
    /// Panics when an explicit owner table is invalid for `shards` (see
    /// [`WindowMap::explicit`]).
    #[must_use]
    pub fn window_map(&self, shards: usize) -> WindowMap {
        match &self.window {
            WindowSpec::Interleaved { window_shift } => {
                WindowMap::interleaved(*window_shift, shards as u8)
            }
            WindowSpec::Explicit {
                window_shift,
                owners,
            } => WindowMap::explicit(*window_shift, shards as u8, owners.clone()),
        }
    }

    /// The configuration of the directed link `source → destination`:
    /// the last matching override, or the default.
    #[must_use]
    pub fn link(&self, source: usize, destination: usize) -> BridgeConfig {
        self.links
            .iter()
            .rev()
            .find(|(s, d, _)| *s == source && *d == destination)
            .map_or(self.default_link, |(_, _, link)| *link)
    }

    /// The minimum crossing latency over every directed link of a
    /// `shards`-shard platform — the largest causally safe
    /// synchronization quantum (no shard can observe a remote effect
    /// sooner than this, response legs included, because responses travel
    /// over the same links).
    #[must_use]
    pub fn min_crossing_latency(&self, shards: usize) -> u64 {
        let mut min = self.default_link.crossing_latency;
        for source in 0..shards {
            for destination in 0..shards {
                if source != destination {
                    min = min.min(self.link(source, destination).crossing_latency);
                }
            }
        }
        min
    }

    /// The [`ModelKind`] a platform of this shape reports: mixed backends
    /// → [`ModelKind::ShardedHet`]; uniform `tlm` with non-posted reads →
    /// [`ModelKind::ShardedTlmReads`]; uniform `tlm` with an explicit
    /// (non-interleaved) window map → [`ModelKind::ShardedSkew`]; plain
    /// uniform shards → [`ModelKind::ShardedTlm`] /
    /// [`ModelKind::ShardedLt`]. The precedence (mixed > reads > window)
    /// matches how far the shape departs from the PR-4 baseline. Uniform
    /// `lt` platforms always report [`ModelKind::ShardedLt`] — there are
    /// no dedicated LT reads/skew kinds (yet), so two LT topologies that
    /// differ only in those knobs share one artifact key; give such runs
    /// distinct workload names if they must be told apart in artifacts.
    #[must_use]
    pub fn model_kind(&self, backends: &[ShardBackendKind]) -> ModelKind {
        let mixed = backends.windows(2).any(|pair| pair[0] != pair[1]);
        if mixed {
            return ModelKind::ShardedHet;
        }
        match backends.first().copied().unwrap_or(ShardBackendKind::Tlm) {
            ShardBackendKind::Tlm if !self.posted_reads => ModelKind::ShardedTlmReads,
            ShardBackendKind::Tlm if matches!(self.window, WindowSpec::Explicit { .. }) => {
                ModelKind::ShardedSkew
            }
            ShardBackendKind::Tlm => ModelKind::ShardedTlm,
            ShardBackendKind::Lt => ModelKind::ShardedLt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology_replicates_to_the_pattern_count() {
        let topology = Topology::uniform(ShardBackendKind::Lt);
        assert_eq!(topology.shard_count(), None);
        assert_eq!(topology.backends(3), vec![ShardBackendKind::Lt; 3]);
        assert!(topology.posted_reads);
        assert!(topology.window_map(3).is_interleaved());
        assert_eq!(
            topology.model_kind(&topology.backends(3)),
            ModelKind::ShardedLt
        );
    }

    #[test]
    fn heterogeneous_topology_fixes_the_shard_count() {
        let topology = Topology::heterogeneous(vec![ShardBackendKind::Tlm, ShardBackendKind::Lt]);
        assert_eq!(topology.shard_count(), Some(2));
        assert_eq!(
            topology.model_kind(&topology.backends(2)),
            ModelKind::ShardedHet
        );
    }

    #[test]
    #[should_panic(expected = "fixes 2 shards")]
    fn mismatched_pattern_count_panics() {
        let topology = Topology::heterogeneous(vec![ShardBackendKind::Tlm, ShardBackendKind::Lt]);
        let _ = topology.backends(3);
    }

    #[test]
    fn link_overrides_shadow_the_default() {
        let fast = BridgeConfig {
            crossing_latency: 32,
            ..BridgeConfig::ahb_plus()
        };
        let topology = Topology::uniform(ShardBackendKind::Tlm).with_link(0, 1, fast);
        assert_eq!(topology.link(0, 1).crossing_latency, 32);
        assert_eq!(
            topology.link(1, 0).crossing_latency,
            BridgeConfig::ahb_plus().crossing_latency
        );
        // The quantum follows the fastest link — asymmetry included.
        assert_eq!(topology.min_crossing_latency(2), 32);
        assert_eq!(
            topology.min_crossing_latency(1),
            BridgeConfig::ahb_plus().crossing_latency
        );
    }

    #[test]
    fn link_validation_rejects_dangling_and_self_links() {
        let link = BridgeConfig::ahb_plus();
        Topology::uniform(ShardBackendKind::Tlm)
            .with_link(0, 1, link)
            .validate_links(2);
        let dangling = Topology::uniform(ShardBackendKind::Tlm).with_link(2, 0, link);
        assert!(std::panic::catch_unwind(|| dangling.validate_links(2)).is_err());
        let selfish = Topology::uniform(ShardBackendKind::Tlm).with_link(1, 1, link);
        assert!(std::panic::catch_unwind(|| selfish.validate_links(2)).is_err());
    }

    #[test]
    fn model_kind_precedence_is_mixed_then_reads_then_window() {
        let owners: Vec<u8> = (0..256).map(|w| u8::from(w % 4 == 3)).collect();
        let tlm = Topology::uniform(ShardBackendKind::Tlm);
        assert_eq!(tlm.model_kind(&tlm.backends(2)), ModelKind::ShardedTlm);
        let reads = tlm.clone().with_posted_reads(false);
        assert_eq!(
            reads.model_kind(&reads.backends(2)),
            ModelKind::ShardedTlmReads
        );
        let skew = tlm.clone().with_window_owners(24, owners.clone());
        assert_eq!(skew.model_kind(&skew.backends(2)), ModelKind::ShardedSkew);
        // Reads beats window when both depart.
        let both = skew.with_posted_reads(false);
        assert_eq!(
            both.model_kind(&both.backends(2)),
            ModelKind::ShardedTlmReads
        );
    }

    #[test]
    fn shard_overrides_shadow_the_platform_defaults() {
        let slow = DdrConfig::without_interleaving();
        let plain = AhbPlusParams::plain_ahb();
        let topology = Topology::het_2x2()
            .with_shard_ddr(3, slow)
            .with_shard_params(2, plain.clone());
        let default_params = AhbPlusParams::ahb_plus();
        let default_ddr = DdrConfig::ahb_plus();
        assert_eq!(topology.params_for(0, &default_params), default_params);
        assert_eq!(topology.params_for(2, &default_params), plain);
        assert_eq!(topology.ddr_for(3, default_ddr), slow);
        assert_eq!(topology.ddr_for(1, default_ddr), default_ddr);
        // Later overrides of the same shard win.
        let fast = DdrConfig::ahb_plus();
        let re = topology.clone().with_shard_ddr(3, fast);
        assert_eq!(re.ddr_for(3, slow), fast);
        topology.validate_links(4);
        let dangling = Topology::het_2x2().with_shard_ddr(4, slow);
        assert!(std::panic::catch_unwind(|| dangling.validate_links(4)).is_err());
    }

    #[test]
    fn explicit_window_spec_resolves_to_an_explicit_map() {
        let owners: Vec<u8> = (0..256).map(|w| u8::from(w % 4 == 3)).collect();
        let topology = Topology::uniform(ShardBackendKind::Tlm).with_window_owners(24, owners);
        let map = topology.window_map(2);
        assert!(!map.is_interleaved());
        assert_eq!(map.owner(amba::ids::Addr::new(0x0300_0000)), 1);
    }
}
