//! `ahb-multi` — the multi-bus AHB+ platform: bridged bus shards built
//! from a declarative [`Topology`].
//!
//! Real SoCs are multi-bus fabrics. This crate scales the paper's
//! single-bus models sideways: a [`MultiSystem`] instantiates N
//! independent bus *shards* — each a complete `ahb-tlm` or `ahb-lt`
//! platform with its own masters, arbiter, write buffer and DDR
//! controller — and connects them through AHB-to-AHB bridges. Each bridge
//! is a slave address window on the local shard (remote-window
//! transactions complete against it and post into a bounded request FIFO)
//! and a replay master on the owning shard (crossings arrive a configured
//! crossing latency later and compete for that bus like any other
//! master).
//!
//! The platform's *shape* is a [`Topology`] value: backend per shard
//! (mix cycle-accurate `tlm` shards with loosely-timed `lt` shards in
//! one fabric), window ownership (round-robin interleave or an explicit
//! non-uniform owner table), per-directed-link timing/capacity overrides
//! (asymmetric fabrics), and the read-crossing mode. Everything below —
//! bridge ports, router, quantum — consumes the same topology, so a
//! platform cannot be built inconsistently.
//!
//! Execution uses **conservative quantum synchronization**: the
//! synchronization quantum equals the *minimum* crossing latency over
//! all bridge links, so a shard simulating one quantum ahead can never
//! miss a remote effect — crossings issued during a quantum are
//! exchanged at the barrier and always released at or after it. Shards
//! therefore run *freely* inside a quantum, either in-line (the
//! single-threaded reference mode) or on one worker thread each
//! (`std::thread::scope`, parking at a blocking barrier or busy-waiting
//! at a [`SpinBarrier`] — see [`MultiConfig::with_spin_sync`]); all
//! modes execute the identical barrier/exchange schedule and are
//! probe-identical, which the test suite verifies by lockstep
//! co-simulation.
//!
//! On top of the fixed quantum sits an optional **adaptive lookahead**
//! scheduler ([`MultiConfig::with_lookahead`]): at a barrier where no
//! delivery is pending, every shard reports the earliest cycle it could
//! possibly emit a crossing (its `next_possible_crossing` bound — a
//! min-plus scan over its release tables, restricted to remote-window
//! items, plus vetoes for queued egress, owed responses and buffered
//! remote writes), and the scheduler stretches the next quantum up to
//! that bound plus one crossing latency (clamped by
//! [`MultiConfig::with_max_stretch`]). Because nothing can
//! cross before the bound, the stretched schedule performs the *same
//! simulation* through fewer barriers: a lookahead run stays
//! probe-identical to its fixed-quantum twin, which the proptest suite
//! verifies across topology axes. [`MultiSystem::barriers_taken`],
//! [`MultiSystem::barriers_stretched`] and
//! [`MultiSystem::lookahead_cycles_gained`] report what the stretching
//! achieved.
//!
//! [`MultiSystem`] implements `analysis::BusModel`, so it plugs into
//! every harness — `table2_speed`, `model_accuracy`, `Simulation`
//! snapshots, lockstep — without harness edits, as
//! `ModelKind::ShardedTlm` / `ShardedLt` / `ShardedHet` /
//! `ShardedTlmReads` / `ShardedSkew`.
//!
//! # What crosses the bridge (and how)
//!
//! Writes always cross **posted**: the local transfer completes into the
//! bridge FIFO (paying the slave's wait states, not DRAM latency) and
//! the replay runs asynchronously on the owning shard. Reads cross
//! posted by default (split-transaction prefetch semantics, no response
//! traffic); with [`Topology::with_posted_reads`]`(false)` they become
//! **non-posted**: the request leg crosses, the issuing master *stalls*,
//! the owning shard replays the read against its DRAM, and the response
//! leg crosses back over the reverse link to retire the stalled transfer
//! — bridges carry traffic in both directions and a remote read pays the
//! full round trip. Either way a crossing is counted once as completed
//! work (at its source) while its replay contributes bus occupancy and
//! DRAM traffic on the remote shard — the platform probe aggregates
//! accordingly.
//!
//! # Example
//!
//! ```
//! use ahb_multi::{MultiConfig, MultiSystem, ShardBackendKind, Topology};
//! use traffic::{pattern_shards, ShardMix};
//!
//! let config = MultiConfig::new(ShardBackendKind::Lt);
//! let patterns = pattern_shards(2, 4, ShardMix::LocalHeavy);
//! let mut platform = MultiSystem::from_shard_patterns(&config, &patterns, 30, 7);
//! let report = platform.run();
//! assert_eq!(report.total_transactions(), 2 * 4 * 30);
//! assert!(platform.crossings() > 0, "the block writers cross the bridge");
//!
//! // A heterogeneous, non-posted-read platform is one topology value.
//! let topology = Topology::het_2x2().with_posted_reads(false);
//! let config = MultiConfig::from_topology(topology);
//! let patterns = pattern_shards(4, 2, ShardMix::ReadHeavy);
//! let mut platform = MultiSystem::from_shard_patterns(&config, &patterns, 10, 7);
//! let report = platform.run();
//! assert_eq!(report.total_transactions(), 4 * 2 * 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod link;
pub mod sync;
pub mod system;
pub mod topology;

pub use config::{BridgeConfig, MultiConfig, ShardBackendKind};
pub use link::BridgeLink;
pub use sync::{SpinBarrier, SyncBarrier};
pub use system::{
    bridge_master, partition_by_window, partition_round_robin, MultiSystem, MAX_TRAFFIC_MASTER_ID,
};
pub use topology::{ShardSet, Topology, WindowSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::model::BusModel;
    use analysis::report::ModelKind;
    use simkern::time::CycleDelta;
    use traffic::{pattern_a, pattern_shards, ShardMix, TrafficPattern, Workload};

    fn small(backend: ShardBackendKind, mix: ShardMix, threaded: bool) -> MultiSystem {
        let config = MultiConfig::new(backend).with_threaded(threaded);
        let patterns = pattern_shards(2, 4, mix);
        MultiSystem::from_shard_patterns(&config, &patterns, 40, 9)
    }

    fn workload_totals(patterns: &[TrafficPattern], count: usize, seed: u64) -> (u64, u64, u64) {
        let mut txns = 0;
        let mut bytes = 0;
        let mut beats = 0;
        for pattern in patterns {
            for (id, profile) in &pattern.masters {
                let trace = Workload::new(*id, profile.clone(), seed).generate(count);
                txns += trace.len() as u64;
                bytes += trace.total_bytes();
                beats += trace.total_beats();
            }
        }
        (txns, bytes, beats)
    }

    #[test]
    fn completes_exactly_the_generated_workload() {
        for backend in [ShardBackendKind::Tlm, ShardBackendKind::Lt] {
            for mix in [
                ShardMix::LocalHeavy,
                ShardMix::BridgeHeavy,
                ShardMix::AllToAll,
            ] {
                let patterns = pattern_shards(2, 4, mix);
                let (txns, bytes, beats) = workload_totals(&patterns, 40, 9);
                let mut system = small(backend, mix, false);
                let report = system.run();
                let probe = system.probe();
                assert!(system.is_finished());
                assert_eq!(report.total_transactions(), txns, "{backend:?}/{mix:?}");
                assert_eq!(probe.transactions, txns);
                assert_eq!(probe.bytes, bytes);
                assert_eq!(probe.data_beats, beats);
                assert_eq!(probe.assertion_errors, 0);
            }
        }
    }

    #[test]
    fn threaded_mode_matches_the_single_threaded_reference() {
        for backend in [ShardBackendKind::Tlm, ShardBackendKind::Lt] {
            let mut single = small(backend, ShardMix::BridgeHeavy, false);
            let mut threaded = small(backend, ShardMix::BridgeHeavy, true);
            let single_report = single.run();
            let threaded_report = threaded.run();
            assert!(
                single_report.metrics_eq(&threaded_report),
                "{backend:?}: threaded shards must be metrically identical"
            );
            assert_eq!(single.probe(), threaded.probe());
            assert_eq!(single.shard_probes(), threaded.shard_probes());
        }
    }

    #[test]
    fn bridge_heavy_mix_crosses_more_than_local_heavy() {
        let mut local = small(ShardBackendKind::Tlm, ShardMix::LocalHeavy, false);
        let mut bridge = small(ShardBackendKind::Tlm, ShardMix::BridgeHeavy, false);
        local.run();
        bridge.run();
        assert!(local.crossings() > 0, "local-heavy still posts across");
        assert!(bridge.crossings() > local.crossings());
        assert!(bridge.probe().bridge_crossings == bridge.crossings());
        assert!(bridge.probe().bridge_fifo_peak >= 1);
    }

    #[test]
    fn window_partition_of_a_single_bus_pattern_is_pure_scaling() {
        // Assigning every master to the shard owning its region gives a
        // sharded run with the same work and zero bridge traffic.
        let parts = partition_by_window(&pattern_a(), 2, traffic::SHARD_WINDOW_SHIFT);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].masters.len() + parts[1].masters.len(), 4);
        let config = MultiConfig::new(ShardBackendKind::Tlm);
        let mut system = MultiSystem::from_shard_patterns(&config, &parts, 30, 7);
        let report = system.run();
        assert_eq!(report.total_transactions(), 4 * 30);
        assert_eq!(system.crossings(), 0);
        assert_eq!(system.probe().bridge_fifo_peak, 0);
    }

    #[test]
    fn round_robin_partition_of_a_single_bus_pattern_crosses_the_bridge() {
        // Pattern A's default regions interleave across the 2-way window
        // map, so a round-robin master assignment produces genuine bridge
        // traffic while still completing identical work.
        let parts = partition_round_robin(&pattern_a(), 2);
        let config = MultiConfig::new(ShardBackendKind::Tlm);
        let mut system = MultiSystem::from_shard_patterns(&config, &parts, 30, 7);
        let report = system.run();
        assert_eq!(report.total_transactions(), 4 * 30);
        assert!(system.crossings() > 0);
    }

    #[test]
    fn bounded_stepping_matches_one_shot_run() {
        let one_shot = small(ShardBackendKind::Lt, ShardMix::AllToAll, false).run();
        let mut stepped = small(ShardBackendKind::Lt, ShardMix::AllToAll, false);
        let mut guard = 0u64;
        while !BusModel::finished(&stepped) {
            stepped.step(CycleDelta::ONE);
            guard += 1;
            assert!(guard < 1_000_000, "stepping must terminate");
        }
        let report = stepped.report();
        assert!(one_shot.metrics_eq(&report));
    }

    #[test]
    fn lookahead_bounded_stepping_is_a_pure_acceleration_of_fixed() {
        // The stretch schedule lives in persistent platform state
        // (`next_target`), so a bounded-stepping driver re-enters the
        // exact barrier sequence a one-shot run takes — and that
        // sequence performs the same simulation as the fixed-quantum
        // schedule, just through fewer barriers.
        let patterns = pattern_shards(2, 4, ShardMix::AllToAll);
        let fixed_config = MultiConfig::new(ShardBackendKind::Tlm);
        let mut fixed = MultiSystem::from_shard_patterns(&fixed_config, &patterns, 40, 9);
        let fixed_report = fixed.run();
        let la_config = MultiConfig::new(ShardBackendKind::Tlm).with_lookahead(true);
        let one_shot = MultiSystem::from_shard_patterns(&la_config, &patterns, 40, 9).run();
        let mut stepped = MultiSystem::from_shard_patterns(&la_config, &patterns, 40, 9);
        let mut guard = 0u64;
        while !BusModel::finished(&stepped) {
            stepped.step(CycleDelta::new(64));
            guard += 1;
            assert!(guard < 1_000_000, "stepping must terminate");
        }
        let stepped_report = stepped.report();
        assert!(one_shot.metrics_eq(&stepped_report));
        // Against the fixed run only the model label differs (the
        // uniform-TLM lookahead platform is its own spectrum point).
        assert_eq!(stepped_report.model, ModelKind::ShardedTlmLa);
        assert_eq!(fixed_report.total_cycles, stepped_report.total_cycles);
        assert_eq!(fixed_report.masters, stepped_report.masters);
        assert_eq!(fixed_report.bus, stepped_report.bus);
        assert_eq!(fixed.probe(), stepped.probe());
        assert!(
            stepped.barriers_stretched() > 0,
            "quiet barriers must stretch"
        );
        assert!(stepped.barriers_taken() < fixed.barriers_taken());
        let stats = BusModel::sync_stats(&stepped).expect("sharded platforms expose sync stats");
        assert_eq!(stats.barriers, stepped.barriers_taken());
        assert_eq!(stats.stretched, stepped.barriers_stretched());
        assert!(stats.mean_quantum > fixed.quantum() as f64);
    }

    #[test]
    fn report_is_idempotent_and_excludes_bridge_masters() {
        let mut system = small(ShardBackendKind::Tlm, ShardMix::BridgeHeavy, false);
        system.run_until(simkern::time::Cycle::new(3_000));
        let first = system.report();
        let second = system.report();
        assert!(first.metrics_eq(&second));
        let done = system.run();
        assert_eq!(done.masters.len(), 8, "bridge replay ports stay internal");
        assert_eq!(done.model, ModelKind::ShardedTlm);
        // Aggregate cycles cover every shard's bus.
        let span = system.shard_probes().iter().map(|p| p.cycle).sum::<u64>();
        assert_eq!(done.total_cycles, span);
    }

    #[test]
    fn cycle_limit_stops_the_platform() {
        let config = MultiConfig::new(ShardBackendKind::Tlm).with_max_cycles(1_000);
        let patterns = pattern_shards(2, 4, ShardMix::BridgeHeavy);
        let mut system = MultiSystem::from_shard_patterns(&config, &patterns, 5_000, 3);
        system.run();
        assert!(BusModel::finished(&system), "limit counts as finished");
        assert!(system.now().value() <= 1_000 + system.quantum());
    }

    #[test]
    fn quantum_is_bounded_by_the_crossing_latency() {
        let config = MultiConfig::new(ShardBackendKind::Lt).with_quantum(17);
        let patterns = pattern_shards(2, 2, ShardMix::LocalHeavy);
        let system = MultiSystem::from_shard_patterns(&config, &patterns, 5, 1);
        assert_eq!(system.quantum(), 17);
        assert_eq!(system.shard_count(), 2);
    }
}
