//! Multi-bus platform configuration.

use amba::params::AhbPlusParams;
use ddrc::DdrConfig;

/// Which single-bus backend each shard instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBackendKind {
    /// Cycle-counting transaction-level shards (`ahb-tlm`).
    Tlm,
    /// Loosely-timed shards (`ahb-lt`).
    Lt,
}

/// Timing and capacity of one AHB-to-AHB bridge link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeConfig {
    /// Minimum cycles between a crossing entering the request FIFO and
    /// its replay being released on the remote shard (clock-domain
    /// crossing plus fabric traversal). This is also the platform's
    /// conservative synchronization quantum: a shard can never observe an
    /// effect from another shard sooner than this, so running each shard
    /// freely for one quantum is always causally safe.
    pub crossing_latency: u64,
    /// Request FIFO depth per directed link. A full FIFO back-pressures:
    /// the next crossing is admitted only when the oldest in-flight
    /// request has been forwarded.
    pub fifo_depth: usize,
    /// Minimum cycles between two consecutive forwards on one link (the
    /// remote bridge master serializes its replays).
    pub forward_interval: u64,
    /// Wait states of the local bridge slave window (cycles from address
    /// phase to first data beat of the posting transfer).
    pub slave_cycles: u64,
}

impl BridgeConfig {
    /// A bridge with a generous crossing latency (which doubles as the
    /// synchronization quantum, so larger is cheaper to simulate) and a
    /// moderate FIFO.
    #[must_use]
    pub fn ahb_plus() -> Self {
        BridgeConfig {
            crossing_latency: 96,
            fifo_depth: 8,
            forward_interval: 4,
            slave_cycles: 2,
        }
    }
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig::ahb_plus()
    }
}

/// Configuration of a multi-bus AHB+ platform. The shard count is implied
/// by the per-shard traffic patterns handed to
/// [`crate::MultiSystem::from_shard_patterns`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiConfig {
    /// The backend every shard instantiates.
    pub backend: ShardBackendKind,
    /// Bus parameters applied to every shard.
    pub params: AhbPlusParams,
    /// DDR configuration of every shard's private memory controller.
    pub ddr: DdrConfig,
    /// Hard simulation length limit in bus cycles (shared by the shards
    /// and the platform's barrier clock).
    pub max_cycles: u64,
    /// Bridge timing and capacity (uniform over all links).
    pub bridge: BridgeConfig,
    /// Synchronization quantum override. `None` uses the bridge crossing
    /// latency (the largest causally safe value); an explicit quantum is
    /// clamped into `[1, crossing_latency]`.
    pub quantum: Option<u64>,
    /// Execute shards on worker threads (`true`) or in-line on the
    /// calling thread (`false`). Both modes run the identical barrier and
    /// exchange schedule and produce probe-identical results; threading
    /// only changes wall-clock time.
    pub threaded: bool,
    /// Log2 of the shard-window size of the platform address map.
    pub window_shift: u32,
}

impl MultiConfig {
    /// The default evaluation platform for the given shard backend.
    #[must_use]
    pub fn new(backend: ShardBackendKind) -> Self {
        MultiConfig {
            backend,
            params: AhbPlusParams::ahb_plus(),
            ddr: DdrConfig::ahb_plus(),
            max_cycles: 5_000_000,
            bridge: BridgeConfig::default(),
            quantum: None,
            threaded: false,
            window_shift: traffic::SHARD_WINDOW_SHIFT,
        }
    }

    /// Returns a copy with different bus parameters.
    #[must_use]
    pub fn with_params(mut self, params: AhbPlusParams) -> Self {
        self.params = params;
        self
    }

    /// Returns a copy with a different DDR configuration.
    #[must_use]
    pub fn with_ddr(mut self, ddr: DdrConfig) -> Self {
        self.ddr = ddr;
        self
    }

    /// Returns a copy with a different cycle limit.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Returns a copy with a different bridge configuration.
    #[must_use]
    pub fn with_bridge(mut self, bridge: BridgeConfig) -> Self {
        self.bridge = bridge;
        self
    }

    /// Returns a copy with an explicit synchronization quantum.
    #[must_use]
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        self.quantum = Some(quantum);
        self
    }

    /// Returns a copy running shards on worker threads (or not).
    #[must_use]
    pub fn with_threaded(mut self, threaded: bool) -> Self {
        self.threaded = threaded;
        self
    }

    /// The effective synchronization quantum: the explicit override
    /// clamped into `[1, crossing_latency]`, or the crossing latency
    /// itself. Quanta above the crossing latency would let a shard
    /// simulate past the earliest possible arrival of a remote effect —
    /// the conservative guarantee this platform is built on.
    #[must_use]
    pub fn effective_quantum(&self) -> u64 {
        self.quantum
            .unwrap_or(self.bridge.crossing_latency)
            .clamp(1, self.bridge.crossing_latency.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_defaults_to_the_crossing_latency_and_is_clamped() {
        let config = MultiConfig::new(ShardBackendKind::Tlm);
        assert_eq!(config.effective_quantum(), config.bridge.crossing_latency);
        assert_eq!(config.clone().with_quantum(0).effective_quantum(), 1);
        assert_eq!(config.clone().with_quantum(7).effective_quantum(), 7);
        assert_eq!(
            config.clone().with_quantum(u64::MAX).effective_quantum(),
            config.bridge.crossing_latency
        );
    }

    #[test]
    fn builders_replace_fields() {
        let config = MultiConfig::new(ShardBackendKind::Lt)
            .with_max_cycles(77)
            .with_threaded(true)
            .with_bridge(BridgeConfig {
                crossing_latency: 32,
                fifo_depth: 4,
                forward_interval: 1,
                slave_cycles: 1,
            });
        assert_eq!(config.backend, ShardBackendKind::Lt);
        assert_eq!(config.max_cycles, 77);
        assert!(config.threaded);
        assert_eq!(config.effective_quantum(), 32);
    }
}
