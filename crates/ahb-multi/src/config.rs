//! Multi-bus platform configuration.

use amba::params::AhbPlusParams;
use ddrc::DdrConfig;

use crate::topology::Topology;

/// Which single-bus backend a shard instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBackendKind {
    /// Cycle-counting transaction-level shards (`ahb-tlm`).
    Tlm,
    /// Loosely-timed shards (`ahb-lt`).
    Lt,
}

/// Timing and capacity of one directed AHB-to-AHB bridge link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeConfig {
    /// Minimum cycles between a crossing entering the request FIFO and
    /// its replay (or response) being released on the remote shard
    /// (clock-domain crossing plus fabric traversal). The *minimum over
    /// all links* is the platform's conservative synchronization quantum:
    /// a shard can never observe an effect from another shard sooner than
    /// this, so running each shard freely for one quantum is always
    /// causally safe.
    pub crossing_latency: u64,
    /// Request FIFO depth per directed link. A full FIFO back-pressures:
    /// the next crossing is admitted only when the oldest in-flight
    /// request has been forwarded.
    pub fifo_depth: usize,
    /// Minimum cycles between two consecutive forwards on one link (the
    /// remote bridge master serializes its replays).
    pub forward_interval: u64,
    /// Wait states of the local bridge slave window (cycles from address
    /// phase to first data beat of the posting transfer). This is a
    /// property of each shard's slave port — paid before the destination
    /// shard is decoded — so the platform always takes it from the
    /// topology's *default* link; per-link overrides do not apply to it.
    pub slave_cycles: u64,
}

impl BridgeConfig {
    /// A bridge with a generous crossing latency (which doubles as the
    /// synchronization quantum, so larger is cheaper to simulate) and a
    /// moderate FIFO.
    #[must_use]
    pub fn ahb_plus() -> Self {
        BridgeConfig {
            crossing_latency: 96,
            fifo_depth: 8,
            forward_interval: 4,
            slave_cycles: 2,
        }
    }
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig::ahb_plus()
    }
}

/// Configuration of a multi-bus AHB+ platform: the declarative
/// [`Topology`] (shard backends, window map, links, read-crossing mode)
/// plus the per-shard bus/DDR parameters and the execution policy. For a
/// uniform topology the shard count is implied by the per-shard traffic
/// patterns handed to [`crate::MultiSystem::from_shard_patterns`]; a
/// heterogeneous topology fixes it.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiConfig {
    /// The platform shape.
    pub topology: Topology,
    /// Bus parameters applied to every shard.
    pub params: AhbPlusParams,
    /// DDR configuration of every shard's private memory controller.
    pub ddr: DdrConfig,
    /// Hard simulation length limit in bus cycles (shared by the shards
    /// and the platform's barrier clock).
    pub max_cycles: u64,
    /// Synchronization quantum override. `None` uses the minimum bridge
    /// crossing latency (the largest causally safe value); an explicit
    /// quantum is clamped into `[1, min_crossing_latency]`.
    pub quantum: Option<u64>,
    /// Execute shards on worker threads (`true`) or in-line on the
    /// calling thread (`false`). Both modes run the identical barrier and
    /// exchange schedule and produce probe-identical results; threading
    /// only changes wall-clock time.
    pub threaded: bool,
    /// Threaded-mode barrier choice: `Some(true)` forces the spin
    /// barrier, `Some(false)` the blocking `std::sync::Barrier`, `None`
    /// picks by host core count (spin on > 2 cores — see
    /// [`crate::sync::default_spin_sync`]). Purely a wall-clock knob:
    /// both barriers run the identical exchange schedule.
    pub spin_sync: Option<bool>,
    /// Adaptive lookahead: when `true` the scheduler stretches the
    /// quantum past the fixed value whenever every shard proves (via its
    /// `next_possible_crossing` bound) that no crossing can be issued
    /// before the stretched barrier. `false` (the default) runs the fixed
    /// schedule of the earlier platforms byte for byte. Both modes are
    /// results-identical; lookahead only removes barriers that could not
    /// have exchanged anything.
    pub lookahead: bool,
    /// Upper bound on how far one lookahead stretch may move a barrier
    /// past its fixed position, in cycles. `None` uses
    /// `64 × effective_quantum`. Bounding the stretch keeps bounded
    /// stepping (`run_until`) responsive on idle platforms.
    pub max_stretch: Option<u64>,
}

impl MultiConfig {
    /// The default evaluation platform: a uniform topology of the given
    /// shard backend (exactly the PR-4 platform shape).
    #[must_use]
    pub fn new(backend: ShardBackendKind) -> Self {
        MultiConfig::from_topology(Topology::uniform(backend))
    }

    /// A platform of the given declarative shape with the default bus and
    /// DDR parameters.
    #[must_use]
    pub fn from_topology(topology: Topology) -> Self {
        MultiConfig {
            topology,
            params: AhbPlusParams::ahb_plus(),
            ddr: DdrConfig::ahb_plus(),
            max_cycles: 5_000_000,
            quantum: None,
            threaded: false,
            spin_sync: None,
            lookahead: false,
            max_stretch: None,
        }
    }

    /// Returns a copy with different bus parameters.
    #[must_use]
    pub fn with_params(mut self, params: AhbPlusParams) -> Self {
        self.params = params;
        self
    }

    /// Returns a copy with a different DDR configuration.
    #[must_use]
    pub fn with_ddr(mut self, ddr: DdrConfig) -> Self {
        self.ddr = ddr;
        self
    }

    /// Returns a copy with a different cycle limit.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Returns a copy with a different *default* link configuration
    /// (per-link overrides live on the topology).
    #[must_use]
    pub fn with_bridge(mut self, bridge: BridgeConfig) -> Self {
        self.topology.default_link = bridge;
        self
    }

    /// Returns a copy with an explicit synchronization quantum.
    #[must_use]
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        self.quantum = Some(quantum);
        self
    }

    /// Returns a copy running shards on worker threads (or not).
    #[must_use]
    pub fn with_threaded(mut self, threaded: bool) -> Self {
        self.threaded = threaded;
        self
    }

    /// Returns a copy forcing the threaded scheduler's barrier choice:
    /// `true` spins at the quantum barrier (fastest on dedicated cores),
    /// `false` parks in the kernel. Without this call the platform picks
    /// by host core count.
    #[must_use]
    pub fn with_spin_sync(mut self, spin_sync: bool) -> Self {
        self.spin_sync = Some(spin_sync);
        self
    }

    /// Returns a copy with adaptive lookahead enabled (or disabled).
    #[must_use]
    pub fn with_lookahead(mut self, lookahead: bool) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Returns a copy with an explicit per-barrier stretch bound.
    #[must_use]
    pub fn with_max_stretch(mut self, max_stretch: u64) -> Self {
        self.max_stretch = Some(max_stretch);
        self
    }

    /// The effective synchronization quantum of a `shards`-shard
    /// platform: the explicit override clamped into
    /// `[1, min_crossing_latency]`, or the minimum crossing latency
    /// itself. Quanta above it would let a shard simulate past the
    /// earliest possible arrival of a remote effect — the conservative
    /// guarantee this platform is built on.
    #[must_use]
    pub fn effective_quantum(&self, shards: usize) -> u64 {
        let min_latency = self.topology.min_crossing_latency(shards);
        self.quantum
            .unwrap_or(min_latency)
            .clamp(1, min_latency.max(1))
    }

    /// Whether a threaded advance spins at the barrier: the explicit
    /// choice, or the host-core-count default.
    #[must_use]
    pub fn effective_spin_sync(&self) -> bool {
        self.spin_sync
            .unwrap_or_else(crate::sync::default_spin_sync)
    }

    /// The effective per-barrier stretch bound: the explicit override, or
    /// 64 quanta.
    #[must_use]
    pub fn effective_max_stretch(&self, quantum: u64) -> u64 {
        self.max_stretch
            .unwrap_or_else(|| quantum.saturating_mul(64))
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_defaults_to_the_crossing_latency_and_is_clamped() {
        let config = MultiConfig::new(ShardBackendKind::Tlm);
        let latency = config.topology.default_link.crossing_latency;
        assert_eq!(config.effective_quantum(2), latency);
        assert_eq!(config.clone().with_quantum(0).effective_quantum(2), 1);
        assert_eq!(config.clone().with_quantum(7).effective_quantum(2), 7);
        assert_eq!(
            config.clone().with_quantum(u64::MAX).effective_quantum(2),
            latency
        );
    }

    #[test]
    fn quantum_follows_the_fastest_link_of_the_topology() {
        let fast = BridgeConfig {
            crossing_latency: 24,
            ..BridgeConfig::ahb_plus()
        };
        let config = MultiConfig::from_topology(
            Topology::uniform(ShardBackendKind::Tlm).with_link(1, 0, fast),
        );
        assert_eq!(config.effective_quantum(2), 24);
        // A one-shard platform has no links; the default stands in.
        assert_eq!(config.effective_quantum(1), 96);
        // An explicit quantum may not exceed the fastest link.
        assert_eq!(config.with_quantum(80).effective_quantum(2), 24);
    }

    #[test]
    fn builders_replace_fields() {
        let config = MultiConfig::new(ShardBackendKind::Lt)
            .with_max_cycles(77)
            .with_threaded(true)
            .with_spin_sync(false)
            .with_bridge(BridgeConfig {
                crossing_latency: 32,
                fifo_depth: 4,
                forward_interval: 1,
                slave_cycles: 1,
            });
        assert_eq!(
            config.topology.backends(2),
            vec![ShardBackendKind::Lt, ShardBackendKind::Lt]
        );
        assert_eq!(config.max_cycles, 77);
        assert!(config.threaded);
        assert!(!config.effective_spin_sync());
        assert_eq!(config.effective_quantum(2), 32);
    }

    #[test]
    fn lookahead_defaults_off_with_a_64_quantum_stretch_bound() {
        let config = MultiConfig::new(ShardBackendKind::Tlm);
        assert!(!config.lookahead);
        assert_eq!(config.effective_max_stretch(96), 96 * 64);
        let tuned = config.with_lookahead(true).with_max_stretch(500);
        assert!(tuned.lookahead);
        assert_eq!(tuned.effective_max_stretch(96), 500);
        // The bound never collapses to zero (a zero stretch would stall
        // the barrier clock).
        assert_eq!(
            MultiConfig::new(ShardBackendKind::Lt)
                .with_max_stretch(0)
                .effective_max_stretch(96),
            1
        );
    }
}
