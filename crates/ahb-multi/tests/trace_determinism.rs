//! Property tests for the trace determinism contract: the merged
//! multi-shard trace stream is a pure function of the simulated schedule.
//!
//! Two statements are asserted over randomly sampled platform shapes:
//!
//! 1. the full merged stream (lifecycle + scheduler events) is
//!    byte-identical across the three scheduler execution modes —
//!    single-threaded, threaded with blocking sync, threaded with spin
//!    sync — because all three run the identical barrier schedule;
//! 2. the *lifecycle* stream (scheduler events filtered out) is
//!    byte-identical between the fixed-quantum and adaptive-lookahead
//!    schedules, because a lookahead stretch changes when shards
//!    synchronize, never what they simulate.

use ahb_multi::{MultiConfig, MultiSystem, ShardBackendKind};
use analysis::trace::TraceLog;
use proptest::prelude::*;
use traffic::{pattern_shards, ShardMix};

/// One sampled platform shape.
#[derive(Debug, Clone, Copy)]
struct Shape {
    backend: ShardBackendKind,
    shards: usize,
    masters: usize,
    mix: ShardMix,
    transactions: usize,
    seed: u64,
}

fn build(shape: Shape, threaded: bool, spin: bool, lookahead: bool) -> MultiSystem {
    let config = MultiConfig::new(shape.backend)
        .with_max_cycles(500_000)
        .with_threaded(threaded)
        .with_spin_sync(spin)
        .with_lookahead(lookahead);
    MultiSystem::from_shard_patterns(
        &config,
        &pattern_shards(shape.shards, shape.masters, shape.mix),
        shape.transactions,
        shape.seed,
    )
}

/// Runs the platform to completion with tracing on and returns the
/// drained log.
fn traced(mut system: MultiSystem) -> TraceLog {
    system.set_tracing(true);
    system.run();
    system.take_trace_log()
}

fn lifecycle_lines(log: &TraceLog) -> String {
    let mut out = String::new();
    for event in log.lifecycle_events() {
        out.push_str(&event.to_json_line());
        out.push('\n');
    }
    out
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (0u64..1u64 << 48).prop_map(|bits| {
        let backend = if bits & 1 == 0 {
            ShardBackendKind::Tlm
        } else {
            ShardBackendKind::Lt
        };
        let mix = match (bits >> 1) % 3 {
            0 => ShardMix::LocalHeavy,
            1 => ShardMix::BridgeHeavy,
            _ => ShardMix::ReadHeavy,
        };
        Shape {
            backend,
            shards: 2 + ((bits >> 3) % 2) as usize,
            masters: 2 + ((bits >> 5) % 2) as usize,
            mix,
            transactions: 3 + ((bits >> 7) % 5) as usize,
            seed: bits >> 12,
        }
    })
}

proptest! {
    #[test]
    fn merged_streams_are_byte_identical_across_scheduler_modes(
        shape in shape_strategy(),
        lookahead in prop_oneof![Just(false), Just(true)],
    ) {
        let single = traced(build(shape, false, false, lookahead)).to_json_lines();
        let threaded = traced(build(shape, true, false, lookahead)).to_json_lines();
        let spin = traced(build(shape, true, true, lookahead)).to_json_lines();
        prop_assert!(!single.is_empty(), "traced run produced no events: {shape:?}");
        prop_assert_eq!(&single, &threaded, "threaded mode diverged: {:?}", shape);
        prop_assert_eq!(&single, &spin, "spin mode diverged: {:?}", shape);
    }

    #[test]
    fn lifecycle_streams_are_identical_across_fixed_and_lookahead_quanta(
        shape in shape_strategy(),
    ) {
        let fixed = traced(build(shape, false, false, false));
        let stretched = traced(build(shape, false, false, true));
        prop_assert_eq!(
            lifecycle_lines(&fixed),
            lifecycle_lines(&stretched),
            "lookahead changed simulated behaviour: {:?}",
            shape
        );
    }
}
