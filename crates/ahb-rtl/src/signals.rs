//! The AHB signal bundles of the pin-accurate model.
//!
//! Every externally observable wire of the bus is a two-phase
//! [`simkern::signal::Register`]: blocks schedule new values during the
//! evaluate phase and all wires change together at the commit phase, exactly
//! like flops behind a common clock edge. Committing every wire of every
//! master on every cycle — including the cycles where nothing changes — is
//! the work a signal-level simulator cannot avoid, and it is what the
//! transaction-level model eliminates.

use amba::ids::{Addr, MasterId};
use amba::signal::{HBurst, HResp, HSize, HTrans};
use simkern::signal::Register;

/// The signals one master drives toward the bus.
#[derive(Debug, Clone, Default)]
pub struct MasterPins {
    /// `HBUSREQx` — the master wants the bus.
    pub hbusreq: Register<bool>,
    /// `HTRANS[1:0]` — transfer type of the current address phase.
    pub htrans: Register<HTrans>,
    /// `HADDR[31:0]` — address of the current address phase.
    pub haddr: Register<Addr>,
    /// `HBURST[2:0]` — burst kind.
    pub hburst: Register<HBurst>,
    /// `HSIZE[2:0]` — per-beat size.
    pub hsize: Register<HSize>,
    /// `HWRITE` — direction.
    pub hwrite: Register<bool>,
    /// AHB+ sideband: the start address of the transaction the master wants
    /// to issue next, exported to the arbiter so it can forward
    /// next-transaction information over the Bus Interface.
    pub pending_addr: Register<Option<Addr>>,
}

impl MasterPins {
    /// Creates a bundle with all wires at their reset values.
    #[must_use]
    pub fn new() -> Self {
        MasterPins::default()
    }

    /// Commits every wire of the bundle (one clock edge).
    pub fn commit(&mut self) {
        self.hbusreq.commit();
        self.htrans.commit();
        self.haddr.commit();
        self.hburst.commit();
        self.hsize.commit();
        self.hwrite.commit();
        self.pending_addr.commit();
    }

    /// Schedules the idle state of the address-phase wires (bus released).
    pub fn drive_idle(&mut self) {
        self.htrans.load(HTrans::Idle);
    }
}

/// The signals shared by the whole bus (driven by arbiter, decoder, slave).
#[derive(Debug, Clone, Default)]
pub struct SharedPins {
    /// `HGRANTx` collapsed into "which master is granted".
    pub hgrant: Register<Option<MasterId>>,
    /// `HMASTER` — the master owning the current address phase.
    pub hmaster: Register<Option<MasterId>>,
    /// `HREADY` — the current data phase completes this cycle.
    pub hready: Register<bool>,
    /// `HRESP[1:0]` — slave response for the current data phase.
    pub hresp: Register<HResp>,
}

impl SharedPins {
    /// Creates the shared wires with `HREADY` high (idle bus accepts
    /// transfers immediately), everything else at reset.
    #[must_use]
    pub fn new() -> Self {
        let mut pins = SharedPins::default();
        pins.hready.load(true);
        pins.hready.commit();
        pins
    }

    /// Commits every shared wire (one clock edge).
    pub fn commit(&mut self) {
        self.hgrant.commit();
        self.hmaster.commit();
        self.hready.commit();
        self.hresp.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_pins_commit_applies_all_wires() {
        let mut pins = MasterPins::new();
        pins.hbusreq.load(true);
        pins.htrans.load(HTrans::NonSeq);
        pins.haddr.load(Addr::new(0x2000_0000));
        assert!(!pins.hbusreq.get(), "not visible before commit");
        pins.commit();
        assert!(pins.hbusreq.get());
        assert_eq!(pins.htrans.get(), HTrans::NonSeq);
        assert_eq!(pins.haddr.get(), Addr::new(0x2000_0000));
    }

    #[test]
    fn drive_idle_schedules_idle_htrans() {
        let mut pins = MasterPins::new();
        pins.htrans.load(HTrans::Seq);
        pins.commit();
        pins.drive_idle();
        pins.commit();
        assert_eq!(pins.htrans.get(), HTrans::Idle);
    }

    #[test]
    fn shared_pins_reset_with_hready_high() {
        let pins = SharedPins::new();
        assert!(pins.hready.get());
        assert_eq!(pins.hgrant.get(), None);
        assert_eq!(pins.hresp.get(), HResp::Okay);
    }

    #[test]
    fn shared_pins_commit_applies_grant() {
        let mut pins = SharedPins::new();
        pins.hgrant.load(Some(MasterId::new(2)));
        pins.commit();
        assert_eq!(pins.hgrant.get(), Some(MasterId::new(2)));
    }

    #[test]
    fn pending_addr_sideband_round_trips() {
        let mut pins = MasterPins::new();
        pins.pending_addr.load(Some(Addr::new(0x2100_0040)));
        pins.commit();
        assert_eq!(pins.pending_addr.get(), Some(Addr::new(0x2100_0040)));
    }
}
