//! Cycle-level master bus-functional models.
//!
//! An [`RtlMaster`] replays a [`TrafficTrace`] at signal level: when a trace
//! item's release time arrives it asserts `HBUSREQ` (enters the requesting
//! state), holds the request until the arbiter grants it and the bus
//! sequencer starts its burst, then steps through the address phases of the
//! burst one beat per accepted cycle. Posted writes may instead be absorbed
//! by the write buffer while the master is still waiting for a grant, which
//! releases the master immediately (paper §3.3).

use amba::ids::MasterId;
use amba::qos::QosConfig;
use amba::txn::Transaction;
use simkern::time::Cycle;
use traffic::{Release, TrafficTrace};

/// Request/transfer state of one master BFM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterState {
    /// Waiting for the release time of the next trace item.
    Waiting,
    /// `HBUSREQ` asserted, waiting for a grant.
    Requesting {
        /// Cycle at which the request was first asserted.
        since: Cycle,
    },
    /// The bus sequencer is transferring this master's burst.
    Transferring,
}

/// One trace-driven, cycle-level master.
#[derive(Debug, Clone)]
pub struct RtlMaster {
    id: MasterId,
    label: String,
    qos: QosConfig,
    posted_writes: bool,
    trace: TrafficTrace,
    next: usize,
    ready_at: Cycle,
    state: MasterState,
    completed: u64,
}

impl RtlMaster {
    /// Creates a master BFM from its trace and QoS programming.
    #[must_use]
    pub fn new(trace: TrafficTrace, label: &str, qos: QosConfig, posted_writes: bool) -> Self {
        let ready_at = match trace.items().first().map(|i| i.release) {
            Some(Release::AfterPrevious(gap)) => Cycle::ZERO + gap,
            Some(Release::At(at)) => at,
            None => Cycle::MAX,
        };
        RtlMaster {
            id: trace.master(),
            label: label.to_owned(),
            qos,
            posted_writes,
            trace,
            next: 0,
            ready_at,
            state: MasterState::Waiting,
            completed: 0,
        }
    }

    /// The master identifier.
    #[must_use]
    pub fn id(&self) -> MasterId {
        self.id
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// QoS register programming.
    #[must_use]
    pub fn qos(&self) -> QosConfig {
        self.qos
    }

    /// Whether writes may be posted into the write buffer.
    #[must_use]
    pub fn posted_writes(&self) -> bool {
        self.posted_writes
    }

    /// Current BFM state.
    #[must_use]
    pub fn state(&self) -> MasterState {
        self.state
    }

    /// Returns `true` when the trace has fully drained.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.next >= self.trace.len()
    }

    /// Transactions completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Release time of the head trace item, or `None` when done.
    #[must_use]
    pub fn ready_at(&self) -> Option<Cycle> {
        if self.is_done() {
            None
        } else {
            Some(self.ready_at)
        }
    }

    /// The transaction the master wants to issue (head of trace).
    #[must_use]
    pub fn current(&self) -> Option<&Transaction> {
        self.trace.items().get(self.next).map(|i| &i.txn)
    }

    /// Per-cycle request update: asserts the request when the release time
    /// of the head item has arrived. Returns `true` if the master is
    /// requesting after the update.
    pub fn update_request(&mut self, now: Cycle) -> bool {
        if let MasterState::Waiting = self.state {
            if !self.is_done() && self.ready_at <= now {
                self.state = MasterState::Requesting {
                    since: self.ready_at,
                };
            }
        }
        matches!(self.state, MasterState::Requesting { .. })
    }

    /// The cycle at which the current request was raised.
    ///
    /// # Panics
    ///
    /// Panics if the master is not requesting.
    #[must_use]
    pub fn requested_at(&self) -> Cycle {
        match self.state {
            MasterState::Requesting { since } => since,
            _ => panic!("master {} is not requesting", self.id),
        }
    }

    /// Returns `true` while the master has an asserted request.
    #[must_use]
    pub fn is_requesting(&self) -> bool {
        matches!(self.state, MasterState::Requesting { .. })
    }

    /// Moves the master into the transferring state and returns a copy of
    /// the transaction the bus sequencer will now carry out.
    ///
    /// # Panics
    ///
    /// Panics if the master has nothing to transfer.
    pub fn begin_transfer(&mut self) -> Transaction {
        assert!(!self.is_done(), "begin_transfer on a drained master");
        self.state = MasterState::Transferring;
        self.trace.items()[self.next].txn
    }

    /// Completes the in-flight transaction at `done` (last data beat) and
    /// schedules the next trace item.
    pub fn finish_transfer(&mut self, done: Cycle) {
        self.advance(done);
    }

    /// The write buffer absorbed the pending posted write at `now`; the
    /// master continues as if the transaction had completed.
    pub fn absorb_posted(&mut self, now: Cycle) {
        self.advance(now);
    }

    fn advance(&mut self, done: Cycle) {
        assert!(!self.is_done(), "advance on a drained master");
        self.completed += 1;
        self.next += 1;
        self.state = MasterState::Waiting;
        if self.next < self.trace.len() {
            self.ready_at = match self.trace.items()[self.next].release {
                Release::AfterPrevious(gap) => done + gap,
                Release::At(at) => at.max(done),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::time::CycleDelta;
    use traffic::{MasterProfile, Workload};

    fn master(count: usize) -> RtlMaster {
        let profile = MasterProfile::cpu();
        let trace = Workload::new(MasterId::new(0), profile.clone(), 5).generate(count);
        RtlMaster::new(trace, "cpu", profile.qos_config(), profile.posted_writes)
    }

    #[test]
    fn request_asserted_only_after_release_time() {
        let mut m = master(3);
        let ready = m.ready_at().unwrap();
        if ready > Cycle::ZERO {
            assert!(!m.update_request(Cycle::ZERO));
        }
        assert!(m.update_request(ready));
        assert!(m.is_requesting());
        assert_eq!(m.requested_at(), ready);
    }

    #[test]
    fn transfer_lifecycle_advances_the_trace() {
        let mut m = master(2);
        let ready = m.ready_at().unwrap();
        m.update_request(ready);
        let txn = m.begin_transfer();
        assert_eq!(txn.master, MasterId::new(0));
        assert_eq!(m.state(), MasterState::Transferring);
        m.finish_transfer(ready + CycleDelta::new(25));
        assert_eq!(m.completed(), 1);
        assert_eq!(m.state(), MasterState::Waiting);
        assert!(!m.is_done());
        m.update_request(Cycle::new(1_000_000));
        m.begin_transfer();
        m.finish_transfer(Cycle::new(1_000_025));
        assert!(m.is_done());
        assert!(m.ready_at().is_none());
    }

    #[test]
    fn absorption_behaves_like_completion_for_the_master() {
        let mut m = master(2);
        let ready = m.ready_at().unwrap();
        m.update_request(ready);
        m.absorb_posted(ready);
        assert_eq!(m.completed(), 1);
        assert_eq!(m.state(), MasterState::Waiting);
        let next_ready = m.ready_at().unwrap();
        assert!(next_ready >= ready);
    }

    #[test]
    #[should_panic(expected = "not requesting")]
    fn requested_at_panics_when_idle() {
        let m = master(1);
        let _ = m.requested_at();
    }

    #[test]
    fn metadata_accessors() {
        let m = master(1);
        assert_eq!(m.id(), MasterId::new(0));
        assert_eq!(m.label(), "cpu");
        assert!(!m.qos().class.is_real_time());
        assert!(m.posted_writes());
        assert!(m.current().is_some());
    }
}
