//! `ahb-rtl` — the pin-accurate, cycle-level AHB+ reference model.
//!
//! The paper validates its transaction-level model against a pin-accurate
//! RTL model of the same bus and uses that model as the speed baseline
//! (0.47 Kcycles/s). The original Verilog is proprietary, so this crate
//! provides the closest substitute that plays both roles: a **signal-level,
//! cycle-by-cycle** model of the AHB+ bus in which
//!
//! * every master drives an AHB signal bundle (`HBUSREQ`, `HTRANS`,
//!   `HADDR`, `HBURST`, `HSIZE`, `HWRITE`) through two-phase registers,
//! * the arbiter samples those signals every cycle, runs the same
//!   [`amba::arbitration::ArbitrationPolicy`] filter chain as the TLM
//!   arbiter, and drives a registered `HGRANT`,
//! * the DDR slave converts address-phase beats into wait states on
//!   `HREADY` using the same [`ddrc::DdrController`] bank FSMs,
//! * the AHB+ write buffer absorbs posted writes from masters that lose
//!   arbitration and competes for the bus as an extra master,
//! * a protocol checker observes every address phase (paper §3.5), and
//! * every register of every block is evaluated and committed on every
//!   simulated clock cycle, whether or not anything interesting happens —
//!   which is precisely why signal-level simulation is slow and why the
//!   transaction-level model of `ahb-tlm` exists.
//!
//! [`RtlSystem`] implements the unified [`analysis::BusModel`] trait
//! (bounded `run_until`/`step`, [`analysis::Probe`] snapshots, idempotent
//! reports), so every driver that works on the transaction-level model —
//! lockstep co-simulation included — drives this one too. One permitted
//! optimization rides on the [`simkern::component::Clocked`] idle-skip
//! contract: when the write buffer and the DDR slave report quiescence
//! and no master is requesting, the run loop fast-forwards to the next
//! release time instead of evaluating no-op cycles
//! ([`RtlConfig::idle_skip`], on by default). Skipped stretches are
//! provably state-identical, so reports are bit-identical with the skip
//! on or off — the model keeps its cycle-accuracy claim.
//!
//! # Example
//!
//! ```
//! use ahb_rtl::{RtlConfig, RtlSystem};
//! use traffic::pattern_a;
//!
//! let mut system = RtlSystem::from_pattern(RtlConfig::default(), &pattern_a(), 20, 1);
//! let report = system.run();
//! assert_eq!(report.total_transactions(), 4 * 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod config;
pub mod ddr_slave;
pub mod master;
pub mod signals;
pub mod system;
pub mod write_buffer;

pub use arbiter::RtlArbiter;
pub use config::RtlConfig;
pub use ddr_slave::DdrSlave;
pub use master::RtlMaster;
pub use signals::{MasterPins, SharedPins};
pub use system::RtlSystem;
pub use write_buffer::RtlWriteBuffer;
