//! The cycle-level AHB+ arbiter.
//!
//! Samples the `HBUSREQ` wires (plus the write buffer's internal request)
//! every clock cycle, keeps a per-master waited counter for the QoS urgency
//! filter, and runs the exact same
//! [`amba::arbitration::ArbitrationPolicy`] chain as the transaction-level
//! arbiter. The decision is driven onto the registered `HGRANT` signal by
//! the system; this block is purely combinational plus the waited counters.

use amba::arbitration::{ArbiterConfig, ArbitrationPolicy, Decision, RequestView};
use amba::ids::{Addr, MasterId};
use amba::qos::{QosConfig, QosRegisterFile};
use ddrc::DdrController;
use simkern::time::Cycle;

/// One per-cycle candidate as sampled from the wires.
#[derive(Debug, Clone, Copy)]
pub struct SampledRequest {
    /// Requesting master.
    pub master: MasterId,
    /// Cycle the request was first asserted.
    pub requested_at: Cycle,
    /// Start address of the transaction the master wants to issue (from the
    /// AHB+ sideband), used for the bank-affinity filter and the BI hint.
    pub addr: Addr,
    /// Whether this is the write buffer's own request.
    pub is_write_buffer: bool,
    /// Write-buffer occupancy (only meaningful for its own request).
    pub write_buffer_fill: usize,
}

/// The cycle-level arbiter block.
#[derive(Debug, Clone)]
pub struct RtlArbiter {
    policy: ArbitrationPolicy,
    qos: QosRegisterFile,
    bank_affinity_from_bi: bool,
    grants: u64,
}

impl RtlArbiter {
    /// Creates an arbiter with the given filter configuration.
    #[must_use]
    pub fn new(config: ArbiterConfig, bank_affinity_from_bi: bool) -> Self {
        RtlArbiter {
            policy: ArbitrationPolicy::new(config),
            qos: QosRegisterFile::new(),
            bank_affinity_from_bi,
            grants: 0,
        }
    }

    /// Programs the QoS registers of a master.
    pub fn program_qos(&mut self, master: MasterId, qos: QosConfig) {
        self.qos.program(master, qos);
    }

    /// Number of grants issued so far.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Runs the filter chain over the sampled requests.
    #[must_use]
    pub fn decide(
        &self,
        now: Cycle,
        sampled: &[SampledRequest],
        ddr: &DdrController,
    ) -> Option<Decision> {
        let views: Vec<RequestView> = sampled
            .iter()
            .map(|request| {
                let mut view = RequestView::new(
                    request.master,
                    self.qos.lookup(request.master),
                    now.saturating_since(request.requested_at).value(),
                );
                view.is_write_buffer = request.is_write_buffer;
                view.write_buffer_fill = request.write_buffer_fill;
                view.bank_ready =
                    self.bank_affinity_from_bi && ddr.is_addr_ready(now, request.addr);
                view
            })
            .collect();
        self.policy.decide(&views)
    }

    /// Commits a grant (advances the round-robin pointer).
    pub fn record_grant(&mut self, master: MasterId) {
        self.policy.record_grant(master);
        self.grants += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrc::DdrConfig;

    fn sampled(master: u8, requested_at: u64, addr: u32) -> SampledRequest {
        SampledRequest {
            master: MasterId::new(master),
            requested_at: Cycle::new(requested_at),
            addr: Addr::new(addr),
            is_write_buffer: false,
            write_buffer_fill: 0,
        }
    }

    #[test]
    fn empty_sample_set_gives_no_grant() {
        let arbiter = RtlArbiter::new(ArbiterConfig::ahb_plus(), true);
        let ddr = DdrController::new(DdrConfig::ahb_plus());
        assert!(arbiter.decide(Cycle::new(0), &[], &ddr).is_none());
    }

    #[test]
    fn real_time_master_wins_over_best_effort() {
        let mut arbiter = RtlArbiter::new(ArbiterConfig::ahb_plus(), true);
        let ddr = DdrController::new(DdrConfig::ahb_plus());
        arbiter.program_qos(MasterId::new(0), QosConfig::non_real_time(0));
        arbiter.program_qos(MasterId::new(1), QosConfig::real_time(300, 7));
        let decision = arbiter
            .decide(
                Cycle::new(5),
                &[sampled(0, 0, 0x2000_0000), sampled(1, 0, 0x2000_0800)],
                &ddr,
            )
            .unwrap();
        assert_eq!(decision.master, MasterId::new(1));
    }

    #[test]
    fn waited_counters_trigger_qos_urgency() {
        let mut arbiter = RtlArbiter::new(ArbiterConfig::ahb_plus(), true);
        let ddr = DdrController::new(DdrConfig::ahb_plus());
        arbiter.program_qos(MasterId::new(0), QosConfig::real_time(1_000, 0));
        arbiter.program_qos(MasterId::new(1), QosConfig::real_time(100, 7));
        // Master 1 has been waiting 90 of its 100-cycle budget; master 0 has
        // barely waited. Urgency must override the better fixed priority.
        let decision = arbiter
            .decide(
                Cycle::new(100),
                &[sampled(0, 99, 0x2000_0000), sampled(1, 10, 0x2000_0800)],
                &ddr,
            )
            .unwrap();
        assert_eq!(decision.master, MasterId::new(1));
    }

    #[test]
    fn grant_recording_rotates_round_robin() {
        let mut arbiter = RtlArbiter::new(ArbiterConfig::ahb_plus(), true);
        let ddr = DdrController::new(DdrConfig::ahb_plus());
        arbiter.program_qos(MasterId::new(0), QosConfig::non_real_time(4));
        arbiter.program_qos(MasterId::new(1), QosConfig::non_real_time(4));
        let requests = [sampled(0, 0, 0x2000_0000), sampled(1, 0, 0x2000_0000)];
        let first = arbiter.decide(Cycle::new(0), &requests, &ddr).unwrap();
        arbiter.record_grant(first.master);
        let second = arbiter.decide(Cycle::new(0), &requests, &ddr).unwrap();
        assert_ne!(first.master, second.master);
        assert_eq!(arbiter.grants(), 1);
    }
}
