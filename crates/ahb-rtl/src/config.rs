//! Configuration of the pin-accurate model.

use amba::params::AhbPlusParams;
use ddrc::DdrConfig;

/// Configuration of a pin-accurate AHB+ platform.
///
/// Deliberately identical in content to `ahb_tlm::TlmConfig` so that the
/// same parameter block drives both abstraction levels.
#[derive(Debug, Clone, PartialEq)]
pub struct RtlConfig {
    /// Bus parameters (arbitration filters, write buffer, pipelining, BI).
    pub params: AhbPlusParams,
    /// DDR controller configuration.
    pub ddr: DdrConfig,
    /// Hard simulation length limit in bus cycles.
    pub max_cycles: u64,
    /// Whether to attach the streaming protocol checker to the address
    /// phases (paper §3.5). Costs a little extra time per beat.
    pub protocol_checks: bool,
    /// Whether the run loop may fast-forward through quiescent stretches
    /// (no burst in flight, no request pending, write buffer and DDR slave
    /// idle — the `Clocked::is_quiescent`/`wake_at` contract). Skipped
    /// cycles are provably state-identical to stepped ones, so reports are
    /// bit-identical either way; the toggle exists to demonstrate exactly
    /// that.
    pub idle_skip: bool,
}

impl RtlConfig {
    /// The default evaluation platform (mirrors `TlmConfig::ahb_plus`).
    #[must_use]
    pub fn ahb_plus() -> Self {
        RtlConfig {
            params: AhbPlusParams::ahb_plus(),
            ddr: DdrConfig::ahb_plus(),
            max_cycles: 5_000_000,
            protocol_checks: true,
            idle_skip: true,
        }
    }

    /// Plain AMBA 2.0 AHB baseline configuration.
    #[must_use]
    pub fn plain_ahb() -> Self {
        RtlConfig {
            params: AhbPlusParams::plain_ahb(),
            ddr: DdrConfig::without_interleaving(),
            max_cycles: 5_000_000,
            protocol_checks: true,
            idle_skip: true,
        }
    }

    /// Returns a copy with different bus parameters.
    #[must_use]
    pub fn with_params(mut self, params: AhbPlusParams) -> Self {
        self.params = params;
        self
    }

    /// Returns a copy with a different cycle limit.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Returns a copy with idle-skip fast-forwarding enabled or disabled.
    #[must_use]
    pub fn with_idle_skip(mut self, idle_skip: bool) -> Self {
        self.idle_skip = idle_skip;
        self
    }
}

impl Default for RtlConfig {
    fn default() -> Self {
        RtlConfig::ahb_plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_full_ahb_plus() {
        let config = RtlConfig::default();
        assert!(config.params.request_pipelining);
        assert!(config.params.has_write_buffer());
        assert!(config.protocol_checks);
    }

    #[test]
    fn plain_ahb_disables_extensions() {
        let config = RtlConfig::plain_ahb();
        assert!(!config.params.request_pipelining);
        assert!(!config.params.has_write_buffer());
    }

    #[test]
    fn builders_replace_fields() {
        let config = RtlConfig::default()
            .with_max_cycles(99)
            .with_params(AhbPlusParams::plain_ahb())
            .with_idle_skip(false);
        assert_eq!(config.max_cycles, 99);
        assert!(!config.params.request_pipelining);
        assert!(!config.idle_skip);
        assert!(RtlConfig::default().idle_skip, "idle-skip is on by default");
    }
}
