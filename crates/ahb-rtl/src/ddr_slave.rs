//! The DDR controller slave adapter of the pin-accurate model.
//!
//! At signal level the DDR controller appears to the bus as an AHB slave:
//! the first address phase of a burst causes wait states on `HREADY` while
//! the bank FSMs precharge/activate and the CAS latency elapses, and each
//! subsequent beat completes in one cycle. The adapter owns the shared
//! [`DdrController`] (the exact same model the TLM uses) and converts its
//! per-access [`ddrc::AccessTiming`] into a wait-state count for the bus
//! sequencer, forwarding Bus-Interface prepare hints along the way.

use amba::ids::Addr;
use amba::txn::Transaction;
use ddrc::{AccessTiming, DdrConfig, DdrController};
use simkern::component::Clocked;
use simkern::time::Cycle;

/// The DDR slave adapter.
#[derive(Debug, Clone)]
pub struct DdrSlave {
    controller: DdrController,
    bursts_served: u64,
}

impl DdrSlave {
    /// Creates the slave around a fresh controller.
    #[must_use]
    pub fn new(config: DdrConfig) -> Self {
        DdrSlave {
            controller: DdrController::new(config),
            bursts_served: 0,
        }
    }

    /// Immutable access to the wrapped controller (for statistics and the
    /// arbiter's bank-affinity feedback).
    #[must_use]
    pub fn controller(&self) -> &DdrController {
        &self.controller
    }

    /// Number of bursts the slave has accepted.
    #[must_use]
    pub fn bursts_served(&self) -> u64 {
        self.bursts_served
    }

    /// Accepts the first address phase of a burst whose data phase starts at
    /// `data_start`, and returns the wait states to insert before the first
    /// data beat together with the full timing decomposition.
    pub fn burst_start(&mut self, data_start: Cycle, txn: &Transaction) -> (u64, AccessTiming) {
        let timing = self
            .controller
            .access(data_start, txn.addr, txn.is_write(), txn.beats());
        self.bursts_served += 1;
        (timing.first_data_latency().value(), timing)
    }

    /// Forwards a Bus-Interface next-transaction hint to the controller.
    pub fn prepare(&mut self, now: Cycle, addr: Addr) {
        self.controller.prepare(now, addr);
    }
}

/// The DDR slave as a clocked block, carrying the idle-skip contract.
///
/// Between bursts the slave holds no per-cycle state machine: every bank
/// FSM transition, the data-bus reservation and the refresh schedule are
/// evaluated *lazily* from the absolute cycle stamp of the next `access` /
/// `prepare` call (`DdrController::apply_refresh` catches up on every
/// refresh interval that elapsed, no matter how far time jumped). Skipping
/// idle cycles over this block is therefore state-identical by
/// construction, which is exactly what `is_quiescent` reports; it raises
/// no activity of its own on the bus, so `wake_at` stays `None`.
impl Clocked for DdrSlave {
    fn eval(&mut self, _now: Cycle) {}

    fn commit(&mut self, _now: Cycle) {}

    fn name(&self) -> &str {
        "ahb-plus-ddr-slave"
    }

    fn is_quiescent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amba::burst::BurstKind;
    use amba::ids::MasterId;
    use amba::signal::HSize;
    use amba::txn::TransferDirection;
    use ddrc::DdrTiming;
    use ddrc::{DdrConfig, DdrGeometry};

    fn config() -> DdrConfig {
        DdrConfig {
            timing: DdrTiming::ddr_266().without_refresh(),
            geometry: DdrGeometry::four_bank_2k(),
            honour_prepare_hints: true,
        }
    }

    fn read(addr: u32, burst: BurstKind) -> Transaction {
        Transaction::new(
            MasterId::new(0),
            amba::ids::Addr::new(addr),
            TransferDirection::Read,
            burst,
            HSize::Word,
        )
    }

    #[test]
    fn first_burst_pays_activation_wait_states() {
        let mut slave = DdrSlave::new(config());
        let (waits, timing) =
            slave.burst_start(Cycle::new(10), &read(0x2000_0000, BurstKind::Incr8));
        assert_eq!(waits, 5, "tRCD + CL on a cold bank");
        assert_eq!(timing.data_cycles.value(), 8);
        assert_eq!(slave.bursts_served(), 1);
    }

    #[test]
    fn prepared_bank_reduces_wait_states() {
        let mut cold = DdrSlave::new(config());
        let (cold_waits, _) =
            cold.burst_start(Cycle::new(20), &read(0x2000_0800, BurstKind::Incr8));

        let mut warm = DdrSlave::new(config());
        warm.prepare(Cycle::new(10), amba::ids::Addr::new(0x2000_0800));
        let (warm_waits, _) =
            warm.burst_start(Cycle::new(20), &read(0x2000_0800, BurstKind::Incr8));
        assert!(warm_waits < cold_waits);
    }

    #[test]
    fn slave_is_always_quiescent_between_bursts() {
        // The quiescence claim rests on lazy, absolute-cycle bookkeeping:
        // a burst arriving after a long quiet stretch must still observe
        // every refresh interval that elapsed during it, whether or not
        // any cycles were actually stepped in between.
        let mut slave = DdrSlave::new(DdrConfig::ahb_plus());
        assert!(slave.is_quiescent());
        assert!(slave.wake_at().is_none());
        slave.burst_start(Cycle::new(50_000), &read(0x2000_0000, BurstKind::Incr8));
        assert!(
            slave.controller().stats().refreshes.value() > 1,
            "refresh schedule must catch up across a time jump"
        );
        assert!(
            slave.is_quiescent(),
            "quiescent again right after the burst"
        );
        assert_eq!(Clocked::name(&slave), "ahb-plus-ddr-slave");
    }

    #[test]
    fn controller_statistics_are_visible() {
        let mut slave = DdrSlave::new(config());
        slave.burst_start(Cycle::new(0), &read(0x2000_0000, BurstKind::Incr4));
        slave.burst_start(Cycle::new(40), &read(0x2000_0040, BurstKind::Incr4));
        assert_eq!(slave.controller().stats().accesses(), 2);
        assert_eq!(slave.controller().stats().row_hits.value(), 1);
    }
}
