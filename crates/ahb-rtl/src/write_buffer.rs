//! Cycle-level AHB+ write buffer block.
//!
//! Functionally identical to the transaction-level buffer (`ahb-tlm`): it
//! absorbs posted writes from masters that cannot get the bus "at the right
//! time" and competes for the bus as an extra master with its own request.
//! The difference is purely in *when* it acts — this block is consulted once
//! per clock cycle by the bus sequencer, not once per transaction.

use std::collections::VecDeque;

use amba::ids::MasterId;
use amba::txn::Transaction;
use simkern::component::Clocked;
use simkern::time::Cycle;

/// The master identifier under which the write buffer requests the bus.
/// Kept equal to the transaction-level model's identifier so reports line up.
pub const RTL_WRITE_BUFFER_MASTER: MasterId = MasterId::new(15);

/// One absorbed posted write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostedWrite {
    /// The absorbed transaction.
    pub txn: Transaction,
    /// Cycle at which the buffer accepted it.
    pub absorbed_at: Cycle,
}

/// The cycle-level write buffer.
#[derive(Debug, Clone, Default)]
pub struct RtlWriteBuffer {
    depth: usize,
    entries: VecDeque<PostedWrite>,
    absorbed: u64,
    drained: u64,
    peak_fill: usize,
}

impl RtlWriteBuffer {
    /// Creates a buffer of the given depth (0 disables it).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        RtlWriteBuffer {
            depth,
            ..RtlWriteBuffer::default()
        }
    }

    /// Returns `true` when the buffer exists.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.depth > 0
    }

    /// Returns `true` when another write can be absorbed.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.depth
    }

    /// Current occupancy.
    #[must_use]
    pub fn fill(&self) -> usize {
        self.entries.len()
    }

    /// Peak occupancy observed.
    #[must_use]
    pub fn peak_fill(&self) -> usize {
        self.peak_fill
    }

    /// Writes absorbed so far.
    #[must_use]
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Writes drained onto the bus so far.
    #[must_use]
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Returns `true` when at least one write is buffered.
    #[must_use]
    pub fn is_occupied(&self) -> bool {
        !self.entries.is_empty()
    }

    /// Absorbs `txn` at `now`; returns `false` if it cannot be absorbed.
    pub fn absorb(&mut self, txn: &Transaction, now: Cycle) -> bool {
        if !self.is_enabled() || !self.has_space() || !txn.posted_ok || !txn.is_write() {
            return false;
        }
        self.entries.push_back(PostedWrite {
            txn: *txn,
            absorbed_at: now,
        });
        self.absorbed += 1;
        self.peak_fill = self.peak_fill.max(self.entries.len());
        true
    }

    /// The write the buffer currently requests the bus for.
    #[must_use]
    pub fn head(&self) -> Option<&PostedWrite> {
        self.entries.front()
    }

    /// Retires the head entry after its burst completed on the bus.
    pub fn drain_head(&mut self) -> Option<PostedWrite> {
        let head = self.entries.pop_front();
        if head.is_some() {
            self.drained += 1;
        }
        head
    }
}

/// The write buffer as a clocked block. Its sequential state only changes
/// through the bus phases (`absorb` / `drain_head`), so `eval` and
/// `commit` are empty — the value of the impl is the idle-skip contract:
/// an *empty* buffer is quiescent (stepping it changes nothing and it
/// never raises activity on its own), while an occupied buffer is actively
/// requesting the bus and must not be skipped over.
impl Clocked for RtlWriteBuffer {
    fn eval(&mut self, _now: Cycle) {}

    fn commit(&mut self, _now: Cycle) {}

    fn reset(&mut self) {
        self.entries.clear();
    }

    fn name(&self) -> &str {
        "ahb-plus-write-buffer"
    }

    fn is_quiescent(&self) -> bool {
        !self.is_occupied()
    }

    // Default `wake_at` (None) is correct: an empty buffer only becomes
    // active again when a master posts a write into it.
}

#[cfg(test)]
mod tests {
    use super::*;
    use amba::burst::BurstKind;
    use amba::ids::Addr;
    use amba::signal::HSize;
    use amba::txn::TransferDirection;

    fn posted_write() -> Transaction {
        Transaction::new(
            MasterId::new(3),
            Addr::new(0x2300_0000),
            TransferDirection::Write,
            BurstKind::Incr8,
            HSize::Word,
        )
    }

    #[test]
    fn absorb_and_drain_fifo() {
        let mut buffer = RtlWriteBuffer::new(2);
        assert!(buffer.absorb(&posted_write(), Cycle::new(3)));
        assert!(buffer.absorb(&posted_write(), Cycle::new(4)));
        assert!(!buffer.absorb(&posted_write(), Cycle::new(5)));
        assert_eq!(buffer.fill(), 2);
        assert_eq!(buffer.peak_fill(), 2);
        let first = buffer.drain_head().unwrap();
        assert_eq!(first.absorbed_at, Cycle::new(3));
        assert_eq!(buffer.drained(), 1);
        assert!(buffer.has_space());
    }

    #[test]
    fn disabled_buffer_never_absorbs() {
        let mut buffer = RtlWriteBuffer::new(0);
        assert!(!buffer.is_enabled());
        assert!(!buffer.absorb(&posted_write(), Cycle::new(0)));
        assert!(!buffer.is_occupied());
        assert!(buffer.head().is_none());
    }

    #[test]
    fn rejects_reads() {
        let mut buffer = RtlWriteBuffer::new(4);
        let read = Transaction::new(
            MasterId::new(0),
            Addr::new(0x2000_0000),
            TransferDirection::Read,
            BurstKind::Single,
            HSize::Word,
        );
        assert!(!buffer.absorb(&read, Cycle::new(0)));
    }

    #[test]
    fn reserved_master_id_matches_tlm() {
        assert_eq!(RTL_WRITE_BUFFER_MASTER.index(), 15);
    }

    #[test]
    fn quiescence_follows_occupancy() {
        let mut buffer = RtlWriteBuffer::new(2);
        assert!(buffer.is_quiescent(), "empty buffer is skippable");
        assert!(buffer.wake_at().is_none(), "wakes only on external posts");
        assert!(buffer.absorb(&posted_write(), Cycle::new(1)));
        assert!(!buffer.is_quiescent(), "occupied buffer requests the bus");
        buffer.drain_head();
        assert!(buffer.is_quiescent());
        assert_eq!(Clocked::name(&buffer), "ahb-plus-write-buffer");
    }
}
