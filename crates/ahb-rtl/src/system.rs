//! The pin-accurate AHB+ platform: masters, arbiter, write buffer, decoder
//! and DDR slave wired together and stepped cycle by cycle.
//!
//! Every simulated clock cycle performs the full evaluate/commit sequence of
//! the two-step cycle-based engine: the master BFMs update their request
//! wires, the write buffer watches for posted writes losing arbitration, the
//! arbiter samples every request and drives the registered `HGRANT`, and the
//! bus sequencer advances the in-flight burst one beat (or one wait state)
//! at a time, driving `HTRANS`/`HADDR`/`HREADY` so the protocol checker can
//! watch every address phase. All of this happens whether or not anything
//! interesting occurs in a given cycle — the defining cost of signal-level
//! simulation and the baseline the transaction-level model is measured
//! against.

use std::time::Instant;

use amba::check::ProtocolChecker;
use amba::ids::MasterId;
use amba::qos::QosConfig;
use amba::signal::{HResp, HTrans};
use amba::txn::{Completion, Transaction};
use analysis::model::{BusModel, Probe};
use analysis::recorder::Recorder;
use analysis::report::{ModelKind, SimReport};
use analysis::trace::{TraceLog, Tracer, FLAG_ROW_HIT, FLAG_WRITE};
use ddrc::AccessClass;
use simkern::assertion::AssertionSink;
use simkern::component::Clocked;
use simkern::time::{Cycle, CycleDelta};
use traffic::{TrafficPattern, TrafficTrace};

use crate::arbiter::{RtlArbiter, SampledRequest};
use crate::config::RtlConfig;
use crate::ddr_slave::DdrSlave;
use crate::master::RtlMaster;
use crate::signals::{MasterPins, SharedPins};
use crate::write_buffer::{RtlWriteBuffer, RTL_WRITE_BUFFER_MASTER};

/// The burst currently occupying the bus.
#[derive(Debug, Clone)]
struct BurstInProgress {
    owner: MasterId,
    via_write_buffer: bool,
    txn: Transaction,
    issued_at: Cycle,
    addr_started: Cycle,
    /// Beats whose data phase has completed.
    beats_done: u32,
    /// Wait states left before the next data beat completes.
    wait_left: u64,
    /// Whether the DDR served this burst from an open or prepared row.
    row_hit: bool,
}

/// The pin-accurate AHB+ platform.
pub struct RtlSystem {
    config: RtlConfig,
    masters: Vec<RtlMaster>,
    /// One pin bundle per master plus one for the write buffer (last entry).
    pins: Vec<MasterPins>,
    shared: SharedPins,
    arbiter: RtlArbiter,
    write_buffer: RtlWriteBuffer,
    slave: DdrSlave,
    checker: ProtocolChecker,
    assertions: AssertionSink,
    recorder: Recorder,
    burst: Option<BurstInProgress>,
    now: Cycle,
    last_completion: Cycle,
    last_bi_hint: Option<amba::ids::Addr>,
    /// Wall-clock seconds spent inside `run_until` so far (accumulated
    /// across bounded steps).
    wall_seconds: f64,
    /// Cycles fast-forwarded by idle-skip (observability: lets tests and
    /// probes confirm the skip path actually engaged).
    idle_skipped_cycles: u64,
    tracer: Tracer,
}

impl std::fmt::Debug for RtlSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtlSystem")
            .field("masters", &self.masters.len())
            .field("now", &self.now)
            .finish()
    }
}

impl RtlSystem {
    /// Builds a platform from explicit per-master traces (same signature as
    /// the transaction-level system so harnesses can drive both).
    #[must_use]
    pub fn new(config: RtlConfig, masters: Vec<(TrafficTrace, String, QosConfig, bool)>) -> Self {
        let mut recorder = Recorder::new(ModelKind::PinAccurateRtl);
        let mut arbiter = RtlArbiter::new(
            config.params.arbiter.clone(),
            config.params.bi_next_transaction_hints,
        );
        let mut bfms = Vec::with_capacity(masters.len());
        for (trace, label, qos, posted) in masters {
            let bfm = RtlMaster::new(trace, &label, qos, posted);
            recorder.register_master(bfm.id(), &label);
            recorder.register_qos(bfm.id(), qos);
            arbiter.program_qos(bfm.id(), qos);
            bfms.push(bfm);
        }
        arbiter.program_qos(RTL_WRITE_BUFFER_MASTER, QosConfig::non_real_time(u8::MAX));
        let pins = (0..=bfms.len()).map(|_| MasterPins::new()).collect();
        let write_buffer = RtlWriteBuffer::new(config.params.write_buffer_depth);
        let slave = DdrSlave::new(config.ddr);
        RtlSystem {
            config,
            masters: bfms,
            pins,
            shared: SharedPins::new(),
            arbiter,
            write_buffer,
            slave,
            checker: ProtocolChecker::new(),
            assertions: AssertionSink::new(),
            recorder,
            burst: None,
            now: Cycle::ZERO,
            last_completion: Cycle::ZERO,
            last_bi_hint: None,
            wall_seconds: 0.0,
            idle_skipped_cycles: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Builds a platform from a traffic pattern (mirrors
    /// `TlmSystem::from_pattern`).
    #[must_use]
    pub fn from_pattern(
        config: RtlConfig,
        pattern: &TrafficPattern,
        transactions_per_master: usize,
        seed: u64,
    ) -> Self {
        RtlSystem::new(config, pattern.expand(transactions_per_master, seed))
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The assertion sink (protocol + model checks).
    #[must_use]
    pub fn assertions(&self) -> &AssertionSink {
        &self.assertions
    }

    /// The protocol checker attached to the address phases.
    #[must_use]
    pub fn checker(&self) -> &ProtocolChecker {
        &self.checker
    }

    /// The DDR slave (for bank statistics).
    #[must_use]
    pub fn ddr(&self) -> &DdrSlave {
        &self.slave
    }

    /// The write buffer block.
    #[must_use]
    pub fn write_buffer(&self) -> &RtlWriteBuffer {
        &self.write_buffer
    }

    /// Returns `true` once every trace has drained, the write buffer is
    /// empty and no burst is in flight.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.burst.is_none()
            && !self.write_buffer.is_occupied()
            && self.masters.iter().all(RtlMaster::is_done)
    }

    /// Cycles fast-forwarded through quiescent stretches so far.
    #[must_use]
    pub fn idle_skipped_cycles(&self) -> u64 {
        self.idle_skipped_cycles
    }

    /// Whole-platform quiescence: `None` while any block is active or a
    /// wake-up is due at or before `now`; otherwise the earliest cycle at
    /// which the platform becomes active of its own accord
    /// (`Cycle::MAX` = never again, i.e. the workload has drained).
    ///
    /// Quiescence composes over the registered blocks exactly as the
    /// [`Clocked`] contract requires: no burst in flight, no grant pending
    /// in the registered `HGRANT`, the write buffer and the DDR slave
    /// quiescent ([`Clocked::is_quiescent`]), and every master idle with a
    /// release time still in the future. Between `now` and the returned
    /// cycle every `eval`/`commit` pair is a provable no-op (the arbiter's
    /// filter chain is pure and sees no candidates; the recorder observes
    /// nothing), so jumping is state-identical to stepping.
    fn quiescent_wake(&self) -> Option<Cycle> {
        if self.burst.is_some()
            || self.shared.hgrant.get().is_some()
            || !self.write_buffer.is_quiescent()
            || !self.slave.is_quiescent()
        {
            return None;
        }
        let mut wake = self.slave.wake_at().unwrap_or(Cycle::MAX);
        for master in &self.masters {
            if master.is_requesting() {
                return None;
            }
            if let Some(ready) = master.ready_at() {
                if ready <= self.now {
                    return None;
                }
                wake = wake.min(ready);
            }
        }
        Some(wake)
    }

    /// The cycle the run loop may fast-forward to, when quiescent and a
    /// finite wake-up exists (a drained platform is quiescent but has
    /// nothing to jump to — the loop's completion check handles it).
    fn idle_skip_target(&self) -> Option<Cycle> {
        match self.quiescent_wake() {
            Some(wake) if wake < Cycle::MAX => Some(wake),
            _ => None,
        }
    }

    /// Advances the platform cycle by cycle until `now()` reaches
    /// `target`, the workload drains, or the configured cycle limit is
    /// hit, and returns the new time. This is the [`BusModel::run_until`]
    /// entry point and the only simulation loop; `run` and bounded
    /// stepping share it. With [`RtlConfig::idle_skip`] enabled, fully
    /// quiescent stretches are fast-forwarded in one jump.
    pub fn run_until(&mut self, target: Cycle) -> Cycle {
        let wall_start = Instant::now();
        let end = target.min(Cycle::new(self.config.max_cycles));
        while !self.is_finished() && self.now < end {
            if self.config.idle_skip {
                if let Some(wake) = self.idle_skip_target() {
                    let jump_to = wake.min(end);
                    self.idle_skipped_cycles += jump_to.saturating_since(self.now).value();
                    self.now = jump_to;
                    if self.now >= end {
                        break;
                    }
                }
            }
            let now = self.now;
            self.eval(now);
            self.commit(now);
            self.now += CycleDelta::ONE;
        }
        self.wall_seconds += wall_start.elapsed().as_secs_f64();
        self.now
    }

    /// The metric report as of the current time. Idempotent: external
    /// totals are published, not accumulated, so mid-run snapshots are
    /// safe.
    #[must_use]
    pub fn report(&mut self) -> SimReport {
        let total_cycles = self.now.value();
        let dram = self.slave.controller().stats();
        self.recorder.set_dram_stats(
            dram.row_hits.value() + dram.prepared_hits.value(),
            dram.accesses(),
        );
        self.recorder
            .observe_write_buffer_fill(self.write_buffer.peak_fill());
        self.recorder
            .set_assertion_errors(self.assertions.error_count() as u64);
        self.recorder.finish(total_cycles, self.wall_seconds)
    }

    /// Snapshot of the observable state at the current time (the uniform
    /// surface behind [`BusModel::probe`]).
    #[must_use]
    pub fn probe(&self) -> Probe {
        let dram = self.slave.controller().stats();
        Probe {
            cycle: self.now.value(),
            transactions: self.recorder.completions(),
            bytes: self.recorder.total_bytes(),
            data_beats: self.recorder.data_beats(),
            busy_cycles: self.recorder.busy_cycles(),
            write_buffer_fill: self.write_buffer.fill() as u64,
            write_buffer_absorbed: self.write_buffer.absorbed(),
            write_buffer_drained: self.write_buffer.drained(),
            write_buffer_peak: self.write_buffer.peak_fill() as u64,
            dram_row_hits: dram.row_hits.value(),
            dram_prepared_hits: dram.prepared_hits.value(),
            dram_accesses: dram.accesses(),
            assertion_errors: self.assertions.error_count() as u64,
            assertion_warnings: self.assertions.warning_count() as u64,
            bridge_crossings: 0,
            bridge_fifo_peak: 0,
        }
    }

    /// Runs the platform to completion (or the cycle limit) and returns the
    /// metric report.
    pub fn run(&mut self) -> SimReport {
        self.run_until(Cycle::MAX);
        self.report()
    }

    // ---- per-cycle phases -------------------------------------------------

    fn phase_masters(&mut self, now: Cycle) {
        for (index, master) in self.masters.iter_mut().enumerate() {
            let requesting = master.update_request(now);
            self.pins[index].hbusreq.load(requesting);
            self.pins[index].pending_addr.load(if requesting {
                master.current().map(|t| t.addr)
            } else {
                None
            });
            if !requesting {
                self.pins[index].drive_idle();
            }
        }
        // The write buffer's request appears on the extra pin bundle.
        let buffer_index = self.masters.len();
        let occupied = self.write_buffer.is_occupied();
        self.pins[buffer_index].hbusreq.load(occupied);
        self.pins[buffer_index]
            .pending_addr
            .load(self.write_buffer.head().map(|h| h.txn.addr));
    }

    fn phase_write_buffer(&mut self, now: Cycle) {
        if !self.write_buffer.is_enabled() {
            return;
        }
        for index in 0..self.masters.len() {
            let master = &self.masters[index];
            if !master.is_requesting() || !master.posted_writes() {
                continue;
            }
            if !self.write_buffer.has_space() {
                continue;
            }
            let Some(txn) = master.current().cloned() else {
                continue;
            };
            if txn.is_write() && txn.posted_ok && self.write_buffer.absorb(&txn, now) {
                let requested_at = self.masters[index].requested_at();
                self.tracer.absorb(
                    txn.master.index() as u16,
                    txn.id.value(),
                    requested_at.value(),
                    now.value(),
                );
                self.masters[index].absorb_posted(now);
                self.pins[index].hbusreq.load(false);
                self.pins[index].pending_addr.load(None);
                self.pins[index].drive_idle();
            }
        }
        self.recorder
            .observe_write_buffer_fill(self.write_buffer.fill());
    }

    fn phase_arbiter(&mut self, now: Cycle) {
        let burst_active = self.burst.is_some();
        let allow_grant = !burst_active || self.config.params.request_pipelining;
        if !allow_grant {
            self.shared.hgrant.load(None);
            return;
        }
        let mut sampled = Vec::with_capacity(self.masters.len() + 1);
        for master in &self.masters {
            if master.is_requesting() {
                if let Some(txn) = master.current() {
                    sampled.push(SampledRequest {
                        master: master.id(),
                        requested_at: master.requested_at(),
                        addr: txn.addr,
                        is_write_buffer: false,
                        write_buffer_fill: 0,
                    });
                }
            }
        }
        // The buffer requests the bus unless its head is the burst already
        // in flight.
        let buffer_busy = self.burst.as_ref().is_some_and(|b| b.via_write_buffer);
        if !buffer_busy {
            if let Some(head) = self.write_buffer.head() {
                sampled.push(SampledRequest {
                    master: RTL_WRITE_BUFFER_MASTER,
                    requested_at: head.absorbed_at,
                    addr: head.txn.addr,
                    is_write_buffer: true,
                    write_buffer_fill: self.write_buffer.fill(),
                });
            }
        }
        match self.arbiter.decide(now, &sampled, self.slave.controller()) {
            Some(decision) => {
                let previous = self.shared.hgrant.get();
                self.shared.hgrant.load(Some(decision.master));
                // Bus Interface: forward the next transaction's address so
                // the DDR controller can open its bank in advance.
                if burst_active && self.config.params.bi_next_transaction_hints {
                    let addr = sampled
                        .iter()
                        .find(|s| s.master == decision.master)
                        .map(|s| s.addr);
                    if let Some(addr) = addr {
                        if previous != Some(decision.master) || self.last_bi_hint != Some(addr) {
                            self.slave.prepare(now, addr);
                            self.last_bi_hint = Some(addr);
                        }
                    }
                }
            }
            None => self.shared.hgrant.load(None),
        }
    }

    fn phase_bus(&mut self, now: Cycle) {
        let requesting_others = |masters: &[RtlMaster], owner: Option<MasterId>| {
            masters
                .iter()
                .any(|m| m.is_requesting() && Some(m.id()) != owner)
        };

        match self.burst.take() {
            None => {
                // Requests may exist while the bus is idle waiting for the
                // registered grant; that is arbitration latency, not
                // contention, so nothing is recorded for it.
                self.shared.hready.load(true);
                self.shared.hresp.load(HResp::Okay);
                if let Some(owner) = self.shared.hgrant.get() {
                    self.burst = self.start_burst(owner, now);
                }
            }
            Some(mut burst) => {
                self.recorder.add_busy_cycles(1);
                if requesting_others(&self.masters, Some(burst.owner)) {
                    self.recorder.add_contention_cycles(1);
                }
                if burst.wait_left > 0 {
                    burst.wait_left -= 1;
                    self.shared.hready.load(false);
                    self.burst = Some(burst);
                } else {
                    // One data beat completes this cycle.
                    self.shared.hready.load(true);
                    burst.beats_done += 1;
                    if burst.beats_done < burst.txn.beats() {
                        self.drive_address_phase(&burst, burst.beats_done, now);
                        self.burst = Some(burst);
                    } else {
                        self.finish_burst(&burst, now);
                        // Request pipelining: the next owner's address phase
                        // overlaps the final data beat, so a registered grant
                        // starts its burst in this same cycle.
                        if self.config.params.request_pipelining {
                            if let Some(owner) = self.shared.hgrant.get() {
                                self.burst = self.start_burst(owner, now);
                            }
                        }
                    }
                }
            }
        }
    }

    fn start_burst(&mut self, owner: MasterId, now: Cycle) -> Option<BurstInProgress> {
        let (txn, issued_at, via_write_buffer) = if owner == RTL_WRITE_BUFFER_MASTER {
            let head = self.write_buffer.head()?;
            (head.txn, head.absorbed_at, true)
        } else {
            let master = self.masters.iter_mut().find(|m| m.id() == owner)?;
            if !master.is_requesting() {
                return None;
            }
            let issued_at = master.requested_at();
            let txn = master.begin_transfer();
            (txn, issued_at, false)
        };
        self.arbiter.record_grant(owner);
        self.shared.hmaster.load(Some(owner));
        let (wait_states, timing) = self.slave.burst_start(now + CycleDelta::ONE, &txn);
        let burst = BurstInProgress {
            owner,
            via_write_buffer,
            txn,
            issued_at,
            addr_started: now,
            beats_done: 0,
            wait_left: wait_states,
            row_hit: matches!(timing.class, AccessClass::RowHit | AccessClass::PreparedHit),
        };
        self.drive_address_phase(&burst, 0, now);
        Some(burst)
    }

    fn drive_address_phase(&mut self, burst: &BurstInProgress, beat: u32, now: Cycle) {
        let pins_index = if burst.via_write_buffer {
            self.masters.len()
        } else {
            self.masters
                .iter()
                .position(|m| m.id() == burst.owner)
                .unwrap_or(self.masters.len())
        };
        let addr = burst.txn.beat_addresses().beat_addr(beat);
        let trans = if beat == 0 {
            HTrans::NonSeq
        } else {
            HTrans::Seq
        };
        let pins = &mut self.pins[pins_index];
        pins.htrans.load(trans);
        pins.haddr.load(addr);
        pins.hburst.load(burst.txn.burst.hburst());
        pins.hsize.load(burst.txn.size);
        pins.hwrite.load(burst.txn.is_write());
        if self.config.protocol_checks {
            self.checker.observe_address_phase(
                now,
                burst.owner,
                trans,
                addr,
                burst.txn.burst.hburst(),
                burst.txn.size,
                &mut self.assertions,
            );
        }
    }

    fn finish_burst(&mut self, burst: &BurstInProgress, now: Cycle) {
        let completion = Completion {
            id: burst.txn.id,
            master: burst.txn.master,
            response: HResp::Okay,
            granted_at: burst.addr_started,
            completed_at: now,
            issued_at: burst.issued_at,
            bytes: burst.txn.bytes(),
            via_write_buffer: burst.via_write_buffer,
        };
        self.recorder
            .record_completion(&completion, burst.txn.beats());
        self.last_completion = self.last_completion.max(now);
        if burst.via_write_buffer {
            self.tracer.drain(
                burst.txn.master.index() as u16,
                burst.txn.id.value(),
                burst.addr_started.value(),
                now.value(),
            );
        } else {
            let flags = if burst.txn.is_write() { FLAG_WRITE } else { 0 }
                | if burst.row_hit { FLAG_ROW_HIT } else { 0 };
            self.tracer.span(
                burst.txn.master.index() as u16,
                burst.txn.id.value(),
                burst.issued_at.value(),
                burst.addr_started.value(),
                now.value(),
                burst.txn.bytes(),
                flags,
            );
        }
        if burst.via_write_buffer {
            self.write_buffer.drain_head();
        } else if let Some(master) = self.masters.iter_mut().find(|m| m.id() == burst.owner) {
            master.finish_transfer(now);
        }
        self.shared.hmaster.load(None);
    }

    /// Enables or disables transaction-lifecycle tracing.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// Tags this system's trace events with a shard id (used when the
    /// platform runs as one shard of a multi-bus system).
    pub fn set_trace_shard(&mut self, shard: u16) {
        self.tracer.set_shard(shard);
    }

    /// Drains the accumulated trace log, filling the counter registry from
    /// the DDR controller and write-buffer accumulators.
    pub fn take_trace_log(&mut self) -> TraceLog {
        let mut log = self.tracer.take();
        let dram = self.slave.controller().stats();
        log.counters.dram_row_hits = dram.row_hits.value() + dram.prepared_hits.value();
        log.counters.dram_accesses = dram.accesses();
        log.counters.write_buffer_peak = self.write_buffer.peak_fill() as u64;
        log
    }
}

impl Clocked for RtlSystem {
    fn eval(&mut self, now: Cycle) {
        self.phase_masters(now);
        self.phase_write_buffer(now);
        self.phase_arbiter(now);
        self.phase_bus(now);
    }

    fn commit(&mut self, _now: Cycle) {
        for pins in &mut self.pins {
            pins.commit();
        }
        self.shared.commit();
    }

    fn name(&self) -> &str {
        "ahb-plus-rtl"
    }

    fn is_quiescent(&self) -> bool {
        self.quiescent_wake().is_some()
    }

    fn wake_at(&self) -> Option<Cycle> {
        // `Cycle::MAX` means the platform never wakes of its own accord
        // (drained) — the contract's `None`.
        self.quiescent_wake().filter(|wake| *wake < Cycle::MAX)
    }
}

impl BusModel for RtlSystem {
    fn kind(&self) -> ModelKind {
        ModelKind::PinAccurateRtl
    }

    fn now(&self) -> Cycle {
        RtlSystem::now(self)
    }

    fn finished(&self) -> bool {
        self.is_finished() || self.now >= Cycle::new(self.config.max_cycles)
    }

    fn run_until(&mut self, target: Cycle) -> Cycle {
        RtlSystem::run_until(self, target)
    }

    fn probe(&self) -> Probe {
        RtlSystem::probe(self)
    }

    fn report(&mut self) -> SimReport {
        RtlSystem::report(self)
    }

    fn set_tracing(&mut self, enabled: bool) {
        RtlSystem::set_tracing(self, enabled);
    }

    fn take_trace(&mut self) -> Option<TraceLog> {
        self.tracer.is_enabled().then(|| self.take_trace_log())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amba::params::AhbPlusParams;
    use traffic::{pattern_a, pattern_c, MasterProfile, Workload};

    fn small_system(transactions: usize) -> RtlSystem {
        RtlSystem::from_pattern(RtlConfig::default(), &pattern_a(), transactions, 7)
    }

    #[test]
    fn runs_a_pattern_to_completion() {
        let mut system = small_system(25);
        let report = system.run();
        assert!(system.is_finished());
        assert_eq!(report.total_transactions(), 4 * 25);
        assert!(report.total_cycles > 0);
        assert!(system.assertions().is_clean(), "no protocol violations");
        assert!(system.checker().observed_beats() > 0);
    }

    #[test]
    fn report_contains_all_masters_with_positive_latency() {
        let mut system = small_system(15);
        let report = system.run();
        assert_eq!(report.masters.len(), 4);
        for metrics in report.masters.values() {
            assert_eq!(metrics.completed, 15);
            assert!(metrics.avg_latency > 0.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = small_system(20).run();
        let b = small_system(20).run();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.bus.busy_cycles, b.bus.busy_cycles);
    }

    #[test]
    fn tracing_captures_every_completion() {
        let mut system = small_system(10);
        system.set_tracing(true);
        let report = system.run();
        let log = system.take_trace_log();
        let spans = log.events.iter().filter(|e| !e.kind.is_scheduler()).count();
        assert!(spans as u64 >= report.total_transactions());
        assert!(log.counters.dram_accesses > 0);
        for event in &log.events {
            assert!(event.start <= event.grant && event.grant <= event.cycle);
        }
    }

    #[test]
    fn tracing_disabled_records_nothing() {
        let mut system = small_system(10);
        system.run();
        let log = system.take_trace_log();
        assert!(log.events.is_empty());
    }

    #[test]
    fn write_heavy_pattern_uses_the_write_buffer() {
        let mut system = RtlSystem::from_pattern(RtlConfig::default(), &pattern_c(), 40, 3);
        let report = system.run();
        assert!(report.bus.write_buffer_hits > 0);
        assert!(system.write_buffer().absorbed() > 0);
    }

    #[test]
    fn disabling_the_write_buffer_removes_buffer_traffic() {
        let config =
            RtlConfig::default().with_params(AhbPlusParams::ahb_plus().with_write_buffer_depth(0));
        let mut system = RtlSystem::from_pattern(config, &pattern_c(), 30, 3);
        let report = system.run();
        assert_eq!(report.bus.write_buffer_hits, 0);
    }

    #[test]
    fn utilization_is_sane_and_cycle_limit_is_respected() {
        let config = RtlConfig::default().with_max_cycles(500);
        let mut system = RtlSystem::from_pattern(config, &pattern_a(), 1_000, 1);
        let report = system.run();
        assert!(report.total_cycles <= 500);
        let utilization = report.bus.utilization(report.total_cycles);
        assert!(utilization > 0.0 && utilization <= 1.0);
    }

    #[test]
    fn single_master_platform_runs() {
        let profile = MasterProfile::dma_stream();
        let trace = Workload::new(MasterId::new(0), profile.clone(), 5).generate(60);
        let mut system = RtlSystem::new(
            RtlConfig::default(),
            vec![(
                trace,
                "dma".to_owned(),
                profile.qos_config(),
                profile.posted_writes,
            )],
        );
        let report = system.run();
        assert_eq!(report.total_transactions(), 60);
    }

    #[test]
    fn bi_hints_generate_prepared_hits() {
        let mut with_hints = RtlSystem::from_pattern(RtlConfig::default(), &pattern_a(), 60, 9);
        with_hints.run();
        let hinted = with_hints.ddr().controller().stats().prepared_hits.value();

        let config =
            RtlConfig::default().with_params(AhbPlusParams::ahb_plus().with_bi_hints(false));
        let mut without_hints = RtlSystem::from_pattern(config, &pattern_a(), 60, 9);
        without_hints.run();
        let unhinted = without_hints
            .ddr()
            .controller()
            .stats()
            .prepared_hits
            .value();

        assert!(hinted > 0);
        assert_eq!(unhinted, 0);
    }

    #[test]
    fn idle_skip_reports_are_bit_identical_to_full_stepping() {
        // The idle-skip contract (`Clocked::is_quiescent`/`wake_at`): for
        // every catalogue pattern, fast-forwarding quiescent stretches
        // must produce a metrically identical report to stepping through
        // every cycle — and on gap-heavy traffic it must actually skip.
        for pattern in [pattern_a(), pattern_c()] {
            let name = pattern.name;
            let mut skipping =
                RtlSystem::from_pattern(RtlConfig::default().with_idle_skip(true), &pattern, 30, 7);
            let mut stepping = RtlSystem::from_pattern(
                RtlConfig::default().with_idle_skip(false),
                &pattern,
                30,
                7,
            );
            let fast = skipping.run();
            let slow = stepping.run();
            assert!(
                fast.metrics_eq(&slow),
                "{name}: idle-skip must not change any metric"
            );
            assert_eq!(stepping.idle_skipped_cycles(), 0);
        }
        // A sparse single-master workload has long quiescent stretches.
        let profile = MasterProfile::video_realtime();
        let trace = Workload::new(MasterId::new(0), profile.clone(), 3).generate(40);
        let build = |idle_skip: bool| {
            RtlSystem::new(
                RtlConfig::default().with_idle_skip(idle_skip),
                vec![(
                    trace.clone(),
                    "video".to_owned(),
                    profile.qos_config(),
                    profile.posted_writes,
                )],
            )
        };
        let mut skipping = build(true);
        let mut stepping = build(false);
        let fast = skipping.run();
        let slow = stepping.run();
        assert!(fast.metrics_eq(&slow));
        assert!(
            skipping.idle_skipped_cycles() > 0,
            "sparse traffic must exercise the skip path"
        );
    }

    #[test]
    fn bounded_stepping_matches_one_shot_run() {
        let one_shot = small_system(15).run();
        let mut stepped = small_system(15);
        while !BusModel::finished(&stepped) {
            stepped.step(CycleDelta::new(1));
        }
        let report = stepped.report();
        assert!(one_shot.metrics_eq(&report));
    }

    #[test]
    fn drained_system_is_quiescent_with_no_wakeup() {
        // Clocked contract: a finished platform's eval/commit are no-ops
        // forever, so it must report quiescent with wake_at = None (not
        // "never quiescent") — otherwise it would pin a ClockEngine's
        // all-components-quiescent fast-forward for the rest of the run.
        let mut system = small_system(5);
        system.run();
        assert!(system.is_finished());
        assert!(Clocked::is_quiescent(&system));
        assert!(Clocked::wake_at(&system).is_none());
    }

    #[test]
    fn probe_matches_the_final_report() {
        let mut system = small_system(15);
        let report = system.run();
        let probe = system.probe();
        assert_eq!(probe.transactions, report.total_transactions());
        assert_eq!(probe.bytes, report.total_bytes());
        assert_eq!(probe.busy_cycles, report.bus.busy_cycles);
        assert_eq!(probe.cycle, report.total_cycles);
        assert_eq!(probe.assertion_errors, 0);
    }

    #[test]
    fn rtl_is_slower_per_simulated_cycle_than_it_is_small() {
        // Sanity: the model actually advances cycle by cycle — simulated
        // cycles must exceed the number of transactions by a wide margin.
        let mut system = small_system(20);
        let report = system.run();
        assert!(report.total_cycles > report.total_transactions() * 5);
    }
}
