//! Property tests of the generalized shard-window decode
//! (`amba::bridge::WindowMap`): owner/is_remote consistency, full
//! address-space coverage with no overlap, and equivalence of the
//! interleaved constructor with the classic `ShardMap` (and with an
//! explicit owner table spelling out the same interleave).

use amba::bridge::{ShardMap, WindowMap, MIN_EXPLICIT_WINDOW_SHIFT};
use amba::ids::Addr;
use proptest::prelude::*;

/// Deterministic owner table derived from a seed: `windows` entries, each
/// a valid shard index (splitmix-style mixing keeps neighbouring windows
/// uncorrelated, so the tables are genuinely non-uniform).
fn owners_from_seed(seed: u64, windows: usize, shards: u8) -> Vec<u8> {
    (0..windows as u64)
        .map(|window| {
            let mut z = seed ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 33) % u64::from(shards)) as u8
        })
        .collect()
}

proptest! {
    /// Owner and is_remote agree on every map: `is_remote(addr, own)`
    /// holds exactly when `owner(addr) != own`, and the owner is always a
    /// valid shard index — for interleaved and explicit maps alike.
    #[test]
    fn owner_and_is_remote_round_trip(
        shift in 24u32..28,
        shards in 1u8..9,
        addr in 0u32..u32::MAX,
        seed in 0u64..1_000_000,
    ) {
        let windows = 1usize << (32 - shift);
        let interleaved = WindowMap::interleaved(shift, shards);
        let explicit = WindowMap::explicit(shift, shards, owners_from_seed(seed, windows, shards));
        for map in [&interleaved, &explicit] {
            let addr = Addr::new(addr);
            let owner = map.owner(addr);
            prop_assert!(owner < shards, "owner {owner} out of range");
            for own in 0..shards {
                prop_assert_eq!(map.is_remote(addr, own), owner != own);
            }
        }
    }

    /// Full coverage, no overlap: every window of the address space has
    /// exactly the owner its table entry names — the whole space is
    /// covered and no address decodes to two shards.
    #[test]
    fn explicit_map_covers_the_full_address_space(
        shift in 24u32..28,
        shards in 1u8..9,
        seed in 0u64..1_000_000,
        offset in 0u32..(1 << 24),
    ) {
        let windows = 1usize << (32 - shift);
        let owners = owners_from_seed(seed, windows, shards);
        let map = WindowMap::explicit(shift, shards, owners.clone());
        prop_assert!(shift >= MIN_EXPLICIT_WINDOW_SHIFT);
        for (window, &owner) in owners.iter().enumerate() {
            // Sample the window at its base, an interior offset and its
            // last byte: all must decode to the table entry.
            let base = (window as u64) << shift;
            let span = 1u64 << shift;
            for probe in [base, base + u64::from(offset) % span, base + span - 1] {
                prop_assert_eq!(map.owner(Addr::new(probe as u32)), owner);
            }
        }
    }

    /// The interleaved constructor is the old `ShardMap`, and an explicit
    /// table spelling out `window % shards` is indistinguishable from it
    /// — exercised on the power-of-two shard counts the classic platform
    /// shapes use.
    #[test]
    fn interleaved_map_matches_the_shard_map(
        shift in 24u32..28,
        shards_log2 in 0u32..4,
        addr in 0u32..u32::MAX,
    ) {
        let shards = 1u8 << shards_log2;
        let shard_map = ShardMap::new(shift, shards);
        let interleaved = WindowMap::interleaved(shift, shards);
        let windows = 1usize << (32 - shift);
        let spelled_out = WindowMap::explicit(
            shift,
            shards,
            (0..windows).map(|w| (w % usize::from(shards)) as u8).collect(),
        );
        let addr = Addr::new(addr);
        prop_assert_eq!(interleaved.owner(addr), shard_map.owner(addr));
        prop_assert_eq!(spelled_out.owner(addr), shard_map.owner(addr));
        for own in 0..shards {
            prop_assert_eq!(interleaved.is_remote(addr, own), shard_map.is_remote(addr, own));
            prop_assert_eq!(spelled_out.is_remote(addr, own), shard_map.is_remote(addr, own));
        }
    }
}

#[test]
fn window_map_from_shard_map_is_the_interleave() {
    let shard_map = ShardMap::new(24, 4);
    let map = WindowMap::from(shard_map);
    assert!(map.is_interleaved());
    assert_eq!(map.shards(), 4);
    for addr in [0u32, 0x0100_0000, 0x4321_0000, 0xFFFF_FFFF] {
        assert_eq!(map.owner(Addr::new(addr)), shard_map.owner(Addr::new(addr)));
    }
}
