//! Cross-crate integration tests: both bus models driven end-to-end from the
//! platform façade, iterating over declarative scenario specs instead of
//! hand-built configurations.

use ahbplus::{AhbPlusParams, PlatformConfig, ScenarioSpec};
use traffic::{pattern_a, pattern_b};

/// The Table-1 scenarios, shrunk and reseeded for the integration tests.
fn table1_specs(transactions: usize, seed: u64) -> Vec<ScenarioSpec> {
    ["table1-a", "table1-b", "table1-c"]
        .into_iter()
        .map(|name| {
            ahbplus::scenario(name)
                .unwrap_or_else(|| panic!("{name} missing from the catalogue"))
                .with_transactions(transactions)
                .with_seed(seed)
        })
        .collect()
}

fn configs(transactions: usize, seed: u64) -> Vec<PlatformConfig> {
    table1_specs(transactions, seed)
        .iter()
        .map(|spec| {
            spec.resolve()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name))
        })
        .collect()
}

#[test]
fn both_models_drain_every_pattern() {
    for config in configs(50, 9) {
        let name = config.pattern.name;
        let rtl = config.run_rtl();
        let tlm = config.run_tlm();
        assert_eq!(rtl.total_transactions(), 4 * 50, "{name} rtl");
        assert_eq!(tlm.total_transactions(), 4 * 50, "{name} tlm");
        assert_eq!(rtl.total_bytes(), tlm.total_bytes(), "{name} bytes");
        assert_eq!(rtl.bus.assertion_errors, 0, "{name} rtl assertions");
        assert_eq!(tlm.bus.assertion_errors, 0, "{name} tlm assertions");
    }
}

#[test]
fn reports_are_reproducible_for_a_fixed_seed() {
    let config = PlatformConfig::new(pattern_a(), 40, 123);
    let first = config.run_tlm();
    let second = config.run_tlm();
    assert_eq!(first.total_cycles, second.total_cycles);
    assert_eq!(first.bus.busy_cycles, second.bus.busy_cycles);
    for (id, metrics) in &first.masters {
        assert_eq!(
            metrics.last_completion_cycle,
            second.masters[id].last_completion_cycle
        );
    }

    let rtl_first = config.run_rtl();
    let rtl_second = config.run_rtl();
    assert_eq!(rtl_first.total_cycles, rtl_second.total_cycles);
}

#[test]
fn different_seeds_produce_different_schedules() {
    let a = PlatformConfig::new(pattern_a(), 40, 1).run_tlm();
    let b = PlatformConfig::new(pattern_a(), 40, 2).run_tlm();
    assert_ne!(a.total_cycles, b.total_cycles);
}

#[test]
fn plain_ahb_configuration_runs_on_both_models() {
    let config = PlatformConfig::new(pattern_a(), 40, 5).with_params(AhbPlusParams::plain_ahb());
    let rtl = config.run_rtl();
    let tlm = config.run_tlm();
    assert_eq!(rtl.total_transactions(), tlm.total_transactions());
    assert_eq!(rtl.bus.write_buffer_hits, 0);
    assert_eq!(tlm.bus.write_buffer_hits, 0);
}

#[test]
fn ahb_plus_moves_the_same_data_in_fewer_bus_cycles_than_plain_ahb() {
    // The whole point of AHB+ (paper §2): bank interleaving hides DRAM
    // activation latency and request pipelining removes hand-over cycles, so
    // the same workload occupies the bus for fewer cycles than on plain
    // AMBA 2.0 AHB. (Individual masters may still finish later because the
    // QoS filters redistribute bandwidth toward the real-time master.)
    let base = PlatformConfig::new(pattern_b(), 120, 17);
    let plus = base.clone().run_tlm();
    let plain = base
        .with_params(AhbPlusParams::plain_ahb())
        .with_ddr(ahbplus::DdrConfig::without_interleaving())
        .run_tlm();
    assert_eq!(plus.total_bytes(), plain.total_bytes(), "same workload");
    assert!(
        plus.bus.busy_cycles < plain.bus.busy_cycles,
        "AHB+ busy cycles ({}) must undercut plain AHB ({})",
        plus.bus.busy_cycles,
        plain.bus.busy_cycles
    );
}

#[test]
fn utilization_and_hit_rates_are_within_physical_bounds() {
    for config in configs(60, 31) {
        for report in [config.run_rtl(), config.run_tlm()] {
            let utilization = report.bus.utilization(report.total_cycles);
            assert!((0.0..=1.0).contains(&utilization));
            let hit_rate = report.bus.dram_hit_rate();
            assert!((0.0..=1.0).contains(&hit_rate));
            assert!(report.bus.busy_cycles <= report.total_cycles);
        }
    }
}
