//! Accuracy integration tests: the transaction-level model must track the
//! pin-accurate reference on identical stimulus (the Table-1 experiment).

use ahbplus::validation::{validate_pattern, validate_table1};
use ahbplus::{scenario, AhbPlusParams};
use analysis::AccuracyReport;
use traffic::{pattern_a, pattern_b};

/// Total bus work (busy cycles) must agree closely on every pattern — this
/// is the metric least sensitive to how contention is attributed.
#[test]
fn bus_busy_cycles_agree_within_five_percent() {
    let table = validate_table1(150, 7);
    for validation in &table.patterns {
        let busy = validation
            .accuracy
            .rows
            .iter()
            .find(|r| r.metric == "bus busy cycles")
            .expect("busy row");
        assert!(
            busy.error_pct() < 5.0,
            "{}: busy-cycle error {:.2}%",
            validation.accuracy.pattern,
            busy.error_pct()
        );
    }
}

/// The longest-running master (the periodic real-time video master) pins the
/// end of the simulation; both models must agree on it almost exactly.
#[test]
fn video_completion_cycle_matches_almost_exactly() {
    for pattern in [pattern_a(), pattern_b()] {
        let validation = validate_pattern(pattern, 150, 3);
        let row = validation
            .accuracy
            .rows
            .iter()
            .find(|r| r.metric.contains("video completion"))
            .expect("video completion row");
        assert!(
            row.error_pct() < 1.0,
            "video completion error {:.2}%",
            row.error_pct()
        );
    }
}

/// With request pipelining disabled the two models are calibrated to within
/// a few percent on every metric — evidence that the residual error of the
/// full configuration comes from concurrency-dependent effects (write-buffer
/// scheduling), not from mis-calibrated transaction timings.
#[test]
fn non_pipelined_configuration_matches_within_five_percent() {
    // The catalogued Table-1 scenario (same pattern and seed) with the
    // pipelining ablation applied as a spec variant.
    let config = scenario("table1-a")
        .expect("catalogued")
        .with_transactions(200)
        .with_params(AhbPlusParams::ahb_plus().with_request_pipelining(false))
        .resolve()
        .expect("resolvable");
    let rtl = config.run_rtl();
    let tlm = config.run_tlm();
    let accuracy = AccuracyReport::compare("pattern A, no pipelining", &rtl, &tlm);
    assert!(
        accuracy.average_error_pct() < 5.0,
        "average error {:.2}%\n{}",
        accuracy.average_error_pct(),
        accuracy.format_table()
    );
}

/// Full AHB+ configuration: average difference across all compared metrics
/// stays bounded (the paper reports <3% for its models; this reproduction's
/// write-buffer dynamics diverge more — see EXPERIMENTS.md).
#[test]
fn full_configuration_average_error_is_bounded() {
    let table = validate_table1(150, 7);
    let error = table.average_error_pct();
    assert!(
        error < 30.0,
        "overall average error {error:.2}%\n{}",
        table.format_table()
    );
}

/// Both models must see the exact same stimulus — equal transaction and byte
/// counts per master.
#[test]
fn stimulus_is_identical_across_models() {
    let validation = validate_pattern(pattern_a(), 100, 19);
    for (id, rtl_m) in &validation.rtl.masters {
        let tlm_m = &validation.tlm.masters[id];
        assert_eq!(rtl_m.completed, tlm_m.completed, "{id} transaction count");
        assert_eq!(rtl_m.bytes, tlm_m.bytes, "{id} byte count");
    }
}
