//! Integration tests for the two architectural claims of AHB+ (paper §2):
//! QoS guarantees for real-time masters and throughput gains from bank
//! interleaving, on both abstraction levels.

use ahbplus::{AhbPlusParams, ArbiterConfig, DdrConfig, PlatformConfig};
use traffic::{pattern_dual_stream, pattern_qos_stress};

fn video_metrics(params: AhbPlusParams) -> (f64, u64) {
    let config = PlatformConfig::new(pattern_qos_stress(), 150, 3).with_params(params);
    let report = config.run_tlm();
    let video = report
        .masters
        .values()
        .find(|m| m.label == "video")
        .expect("video master");
    (video.avg_grant_latency, video.qos_violations)
}

#[test]
fn ahb_plus_protects_the_demoted_real_time_master() {
    let (plain_latency, plain_violations) = video_metrics(
        AhbPlusParams::ahb_plus().with_arbiter(ArbiterConfig::plain_ahb_fixed_priority()),
    );
    let (plus_latency, plus_violations) = video_metrics(AhbPlusParams::ahb_plus());
    assert!(
        plus_latency < plain_latency,
        "AHB+ grant latency {plus_latency:.1} must beat plain AHB {plain_latency:.1}"
    );
    assert!(
        plus_violations <= plain_violations,
        "AHB+ must not violate QoS more often ({plus_violations} vs {plain_violations})"
    );
}

#[test]
fn qos_protection_holds_on_the_pin_accurate_model_too() {
    let run = |arbiter: ArbiterConfig| -> f64 {
        let params = AhbPlusParams::ahb_plus().with_arbiter(arbiter);
        let config = PlatformConfig::new(pattern_qos_stress(), 80, 3).with_params(params);
        let report = config.run_rtl();
        report
            .masters
            .values()
            .find(|m| m.label == "video")
            .map(|m| m.avg_grant_latency)
            .expect("video master")
    };
    let plain = run(ArbiterConfig::plain_ahb_fixed_priority());
    let plus = run(ArbiterConfig::ahb_plus());
    assert!(
        plus < plain,
        "RTL: AHB+ grant latency {plus:.1} must beat plain AHB {plain:.1}"
    );
}

fn streaming_completion(bi_hints: bool) -> (u64, f64) {
    let params = AhbPlusParams::ahb_plus().with_bi_hints(bi_hints);
    let ddr = if bi_hints {
        DdrConfig::ahb_plus()
    } else {
        DdrConfig::without_interleaving()
    };
    let config = PlatformConfig::new(pattern_dual_stream(), 200, 11)
        .with_params(params)
        .with_ddr(ddr);
    let mut system = config.build_tlm();
    let report = system.run();
    let done = report
        .masters
        .values()
        .filter(|m| m.label != "video")
        .map(|m| m.last_completion_cycle)
        .max()
        .unwrap();
    (done, system.ddr().stats().hit_rate())
}

#[test]
fn bank_interleaving_improves_hit_rate_and_completion_time() {
    let (without_done, without_hits) = streaming_completion(false);
    let (with_done, with_hits) = streaming_completion(true);
    assert!(
        with_hits > without_hits,
        "BI hints must raise the DRAM hit rate ({with_hits:.3} vs {without_hits:.3})"
    );
    assert!(
        with_done <= without_done,
        "BI hints must not slow the streaming masters down ({with_done} vs {without_done})"
    );
}

#[test]
fn write_buffer_depth_reduces_writer_stalls() {
    let writer_done = |depth: usize| -> u64 {
        let params = AhbPlusParams::ahb_plus().with_write_buffer_depth(depth);
        let config = PlatformConfig::new(traffic::pattern_c(), 150, 5).with_params(params);
        let report = config.run_tlm();
        report
            .masters
            .values()
            .find(|m| m.label == "writer")
            .map(|m| m.last_completion_cycle)
            .expect("writer master")
    };
    let shallow = writer_done(0);
    let deep = writer_done(8);
    assert!(
        deep <= shallow,
        "a deeper write buffer must not slow the block writer ({deep} vs {shallow})"
    );
}
