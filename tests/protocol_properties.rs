//! Property-based tests over the protocol vocabulary, the burst arithmetic,
//! the DRAM bank FSM invariants and the workload generator.

use amba::arbitration::{ArbiterConfig, ArbitrationPolicy, RequestView};
use amba::burst::{BurstKind, BurstSequence};
use amba::check::validate_transaction;
use amba::ids::{Addr, MasterId};
use amba::qos::QosConfig;
use amba::signal::{HBurst, HResp, HSize, HTrans};
use ddrc::{Bank, DdrTiming};
use proptest::prelude::*;
use simkern::rng::SimRng;
use simkern::time::Cycle;
use traffic::{MasterProfile, Workload};

fn burst_kind_strategy() -> impl Strategy<Value = BurstKind> {
    prop_oneof![
        Just(BurstKind::Single),
        (1u32..20).prop_map(BurstKind::Incr),
        Just(BurstKind::Incr4),
        Just(BurstKind::Incr8),
        Just(BurstKind::Incr16),
        Just(BurstKind::Wrap4),
        Just(BurstKind::Wrap8),
        Just(BurstKind::Wrap16),
    ]
}

fn hsize_strategy() -> impl Strategy<Value = HSize> {
    prop_oneof![
        Just(HSize::Byte),
        Just(HSize::Halfword),
        Just(HSize::Word),
        Just(HSize::Doubleword),
    ]
}

proptest! {
    /// Every signal encoding round-trips through its bit pattern.
    #[test]
    fn signal_encodings_round_trip(bits in 0u8..=0xFF) {
        prop_assert_eq!(HTrans::from_bits(bits).bits(), bits & 0b11);
        prop_assert_eq!(HBurst::from_bits(bits).bits(), bits & 0b111);
        prop_assert_eq!(HResp::from_bits(bits).bits(), bits & 0b11);
    }

    /// A burst sequence always produces exactly `beats()` addresses, all
    /// aligned to the transfer size, and wrapping bursts stay inside their
    /// naturally aligned block.
    #[test]
    fn burst_sequences_are_well_formed(
        start in 0u32..0x1000_0000u32,
        kind in burst_kind_strategy(),
        size in hsize_strategy(),
    ) {
        let start = Addr::new(start).align_down(size.bytes());
        let seq = BurstSequence::new(start, kind, size);
        let addrs: Vec<Addr> = seq.clone().collect();
        prop_assert_eq!(addrs.len() as u32, kind.beats());
        for addr in &addrs {
            prop_assert!(addr.is_aligned(size.bytes()));
        }
        if kind.is_wrapping() {
            let block = kind.beats() * size.bytes();
            let base = start.align_down(block);
            for addr in &addrs {
                prop_assert_eq!(addr.align_down(block), base);
            }
            // A wrapping burst visits distinct addresses covering the block.
            let mut unique: Vec<u32> = addrs.iter().map(|a| a.value()).collect();
            unique.sort_unstable();
            unique.dedup();
            prop_assert_eq!(unique.len() as u32, kind.beats());
        } else {
            // Incrementing bursts are strictly increasing by the beat size.
            for pair in addrs.windows(2) {
                prop_assert_eq!(pair[1].value(), pair[0].value() + size.bytes());
            }
        }
    }

    /// The deterministic RNG produces identical streams for identical seeds
    /// and respects range bounds.
    #[test]
    fn rng_is_deterministic_and_bounded(seed in any::<u64>(), low in 0u64..1000, span in 1u64..1000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let v = a.range_u64(low, low + span);
        prop_assert!(v >= low && v < low + span);
    }

    /// Every transaction emitted by every preset workload profile is legal
    /// AHB: aligned and never crossing a 1 KB boundary.
    #[test]
    fn generated_traffic_is_always_protocol_legal(
        seed in any::<u64>(),
        profile_index in 0usize..4,
        count in 1usize..80,
    ) {
        let profile = match profile_index {
            0 => MasterProfile::cpu(),
            1 => MasterProfile::dma_stream(),
            2 => MasterProfile::video_realtime(),
            _ => MasterProfile::block_writer(),
        };
        let trace = Workload::new(MasterId::new(1), profile, seed).generate(count);
        prop_assert_eq!(trace.len(), count);
        for item in trace.items() {
            prop_assert!(validate_transaction(&item.txn).is_ok());
        }
    }

    /// Bank FSM invariant: an access to the row that is already open is
    /// never slower than an access that has to open it, and a prepared bank
    /// never makes an access slower than a cold bank.
    #[test]
    fn bank_latencies_are_monotone(
        row in 0u32..64,
        other_row in 64u32..128,
        gap in 0u64..200,
        beats in 1u32..16,
    ) {
        let timing = DdrTiming::ddr_266().without_refresh();
        // Hit vs conflict.
        let mut hit_bank = Bank::new();
        hit_bank.access(Cycle::new(0), row, false, beats, &timing);
        let hit = hit_bank.access(Cycle::new(100 + gap), row, false, beats, &timing);
        let mut conflict_bank = Bank::new();
        conflict_bank.access(Cycle::new(0), row, false, beats, &timing);
        let conflict = conflict_bank.access(Cycle::new(100 + gap), other_row, false, beats, &timing);
        prop_assert!(hit.latency <= conflict.latency);

        // Prepared vs cold.
        let mut prepared = Bank::new();
        prepared.prepare(Cycle::new(0), row, &timing);
        let warm = prepared.access(Cycle::new(50 + gap), row, false, beats, &timing);
        let mut cold = Bank::new();
        let miss = cold.access(Cycle::new(50 + gap), row, false, beats, &timing);
        prop_assert!(warm.latency <= miss.latency);
    }

    /// Arbitration always grants a requesting master (never deadlocks or
    /// invents one), and a sole urgent real-time master always wins.
    #[test]
    fn arbitration_grants_exactly_one_pending_master(
        priorities in prop::collection::vec(0u8..16, 1..6),
        urgent_index in 0usize..6,
    ) {
        let policy = ArbitrationPolicy::new(ArbiterConfig::ahb_plus());
        let mut requests: Vec<RequestView> = priorities
            .iter()
            .enumerate()
            .map(|(i, p)| RequestView::new(MasterId::new(i as u8), QosConfig::non_real_time(*p), 5))
            .collect();
        let decision = policy.decide(&requests).expect("someone must win");
        prop_assert!(requests.iter().any(|r| r.master == decision.master));

        // Make one master urgent real-time; it must win.
        if urgent_index < requests.len() {
            requests[urgent_index].qos = QosConfig::real_time(10, 15);
            requests[urgent_index].waited = 100;
            let decision = policy.decide(&requests).expect("someone must win");
            prop_assert_eq!(decision.master, requests[urgent_index].master);
        }
    }
}
