//! Integration coverage for the loosely-timed backend: lockstep against
//! the transaction-level model over the whole pattern registry, bounded
//! stepping determinism, and the documented timing-error bound.

use ahb_lt::LT_TIMING_ERROR_BOUND_PCT;
use ahbplus::{run_lockstep, PlatformConfig};
use analysis::{compare_models, BusModel, ModelKind};
use proptest::prelude::*;
use simkern::time::CycleDelta;
use traffic::pattern_registry;

/// Workload length for the registry sweep — small enough for debug-mode
/// test runs, long enough to exercise the write buffer and row sketch.
const SWEEP_TRANSACTIONS: usize = 60;

#[test]
fn lt_and_tlm_produce_identical_results_on_every_registered_pattern() {
    for (key, build) in pattern_registry() {
        let config = PlatformConfig::new(build(), SWEEP_TRANSACTIONS, 7);
        let mut tlm = config.build_tlm();
        let mut lt = config.build_lt();
        let outcome = run_lockstep(&mut tlm, &mut lt, CycleDelta::new(256));
        // Mid-run divergence between abstraction levels is expected (and
        // reported); identical end-of-run *results* are the requirement.
        assert!(
            outcome.results_match,
            "pattern '{key}': functional results must be identical — {}",
            outcome.summary()
        );
        assert_eq!(
            outcome.a.total_transactions(),
            outcome.b.total_transactions(),
            "pattern '{key}'"
        );
        assert_eq!(
            outcome.a.total_bytes(),
            outcome.b.total_bytes(),
            "pattern '{key}'"
        );
        if let Some(divergence) = &outcome.first_divergence {
            assert!(
                divergence.cycle > 0,
                "pattern '{key}': divergence horizon must be reported"
            );
        }
    }
}

#[test]
fn lt_timing_error_stays_within_the_documented_bound() {
    for (key, build) in pattern_registry() {
        for seed in [3u64, 7, 21] {
            let config = PlatformConfig::new(build(), SWEEP_TRANSACTIONS, seed);
            let mut tlm = config.build_tlm();
            let mut lt = config.build_lt();
            let comparison = compare_models(key, &mut tlm, &mut lt);
            let error = comparison.cycle_error_pct();
            let busy = comparison.counter("busy_cycles").unwrap();
            println!(
                "pattern '{key}' seed {seed}: LT cycle error {error:.2}% (tlm {} vs lt {}), \
                 busy error {:.2}% (tlm {} vs lt {})",
                comparison.counter("cycle").unwrap().reference,
                comparison.counter("cycle").unwrap().candidate,
                busy.error_pct(),
                busy.reference,
                busy.candidate
            );
            assert!(
                error <= LT_TIMING_ERROR_BOUND_PCT,
                "pattern '{key}' seed {seed}: LT cycle error {error:.2}% exceeds the \
                 documented {LT_TIMING_ERROR_BOUND_PCT}% bound"
            );
            assert!(comparison.results_match, "pattern '{key}' seed {seed}");
        }
    }
}

#[test]
fn lt_step_one_matches_one_shot_run_through_the_trait() {
    let config = PlatformConfig::new(traffic::pattern_a(), 40, 11);
    let one_shot = config.build_lt().run();
    let mut stepped = config.build_lt();
    let mut guard = 0u64;
    while !BusModel::finished(&stepped) {
        BusModel::step(&mut stepped, CycleDelta::ONE);
        guard += 1;
        assert!(guard < 1_000_000, "stepping must terminate");
    }
    let report = BusModel::report(&mut stepped);
    assert!(
        one_shot.metrics_eq(&report),
        "step(1)-driven LT run must be metrically identical to run()"
    );
}

#[test]
fn lt_registers_as_the_third_model_kind() {
    let config = PlatformConfig::new(traffic::pattern_a(), 10, 5);
    let mut model = config.build_model(ModelKind::LooselyTimed);
    assert_eq!(model.model_name(), "lt");
    let report = model.run();
    assert_eq!(report.model, ModelKind::LooselyTimed);
    assert_eq!(report.total_transactions(), 4 * 10);
}

proptest! {
    /// Across random workload lengths and seeds, the LT backend completes
    /// exactly the same work as the TLM and its elapsed-cycle estimate
    /// stays within the documented bound.
    #[test]
    fn lt_error_bound_holds_across_random_workloads(
        transactions in 20usize..80,
        seed in 0u64..1_000,
    ) {
        let config = PlatformConfig::new(traffic::pattern_a(), transactions, seed);
        let mut tlm = config.build_tlm();
        let mut lt = config.build_lt();
        let comparison = compare_models("prop", &mut tlm, &mut lt);
        prop_assert!(comparison.results_match);
        prop_assert!(
            comparison.cycle_error_pct() <= LT_TIMING_ERROR_BOUND_PCT,
            "cycle error {}% above bound (transactions {}, seed {})",
            comparison.cycle_error_pct(), transactions, seed
        );
    }
}
