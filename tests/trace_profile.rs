//! Cross-backend contracts of the trace-analytics layer:
//!
//! 1. The compact `.ahbt` binary container is lossless — for randomly
//!    sampled traced runs of every registered backend, `write_binary` →
//!    `TraceReader` reproduces the exact event sequence, the counters,
//!    and the byte-identical JSON-lines rendering (and re-encoding the
//!    decoded log is byte-identical too).
//! 2. The latency attribution of `analysis::profile` is exact — on
//!    every catalogue scenario and every backend, the per-transaction
//!    components (arbitration wait + attributed service) sum to the
//!    observed request→completion span, with no residual.

use ahbplus::{scenario_catalogue, PlatformConfig};
use analysis::model::BusModel;
use analysis::profile::{Profile, ProfileOptions};
use analysis::report::ModelKind;
use analysis::trace::{TraceEvent, TraceEventKind, TraceLog};
use proptest::prelude::*;

/// Runs one backend over the config with tracing enabled and returns
/// the merged log.
fn traced_run(config: &PlatformConfig, kind: ModelKind) -> TraceLog {
    let mut model = config.build_model(kind);
    model.set_tracing(true);
    model.run();
    model
        .take_trace()
        .unwrap_or_else(|| panic!("backend {} supports tracing", kind.id()))
}

/// The master-visible lifecycle completions of a log (spans and
/// write-buffer absorptions).
fn completions(log: &TraceLog) -> Vec<TraceEvent> {
    log.events
        .iter()
        .copied()
        .filter(|e| matches!(e.kind, TraceEventKind::Span | TraceEventKind::Absorb))
        .collect()
}

fn kind_from_bits(bits: u64) -> ModelKind {
    let all = ModelKind::ALL;
    all[(bits % all.len() as u64) as usize]
}

proptest! {
    /// `.ahbt` round trip is exact for random traced runs across every
    /// registered backend.
    #[test]
    fn binary_round_trip_reproduces_the_event_sequence(bits in 0u64..1u64 << 48) {
        let kind = kind_from_bits(bits);
        let pattern = if (bits >> 4) & 1 == 0 {
            traffic::pattern_a()
        } else {
            traffic::pattern_b()
        };
        let transactions = 3 + ((bits >> 5) % 5) as usize;
        let seed = bits >> 8;
        let config = PlatformConfig::new(pattern, transactions, seed);
        let log = traced_run(&config, kind);
        prop_assert!(!log.events.is_empty(), "{} produced no events", kind.id());

        let binary = log.to_binary();
        let decoded = TraceLog::read_binary(binary.as_slice()).expect("valid .ahbt bytes");
        prop_assert_eq!(&log.events, &decoded.events, "{} events diverged", kind.id());
        prop_assert_eq!(log.counters, decoded.counters, "{} counters diverged", kind.id());
        // Byte-exactness, both ways: the JSON-lines rendering (the
        // determinism contract's surface) and the re-encoded binary.
        prop_assert_eq!(log.to_json_lines(), decoded.to_json_lines());
        prop_assert_eq!(binary, decoded.to_binary());
    }

    /// The JSON-lines parser inverts the exporter event by event.
    #[test]
    fn json_line_parse_inverts_the_exporter(bits in 0u64..1u64 << 48) {
        let kind = kind_from_bits(bits);
        let config = PlatformConfig::new(traffic::pattern_a(), 4, bits >> 8);
        let log = traced_run(&config, kind);
        for event in &log.events {
            let line = event.to_json_line();
            let parsed = TraceEvent::from_json_line(&line)
                .unwrap_or_else(|e| panic!("parse '{line}': {e}"));
            prop_assert_eq!(&parsed, event);
        }
    }
}

/// Attribution is exact on every catalogue scenario for every backend:
/// each transaction's `arb_wait + service` equals its observed
/// request→completion span, so the profile's component totals equal the
/// summed lifecycle latency with no residual.
#[test]
fn attribution_components_sum_to_the_observed_span_on_every_catalogue_scenario() {
    for spec in scenario_catalogue() {
        // Shrink the workload: the invariant is structural, not
        // statistical, so a handful of transactions per master exercises
        // it at a fraction of the catalogue's full runtime.
        let transactions = spec.transactions_per_master.min(6);
        let spec = spec.with_transactions(transactions);
        let config = spec.resolve().expect("catalogue scenario resolves");
        for kind in ModelKind::ALL {
            let log = traced_run(&config, kind);
            let mut observed_span_total = 0u64;
            let events = completions(&log);
            for event in &events {
                assert!(
                    event.start <= event.grant && event.grant <= event.cycle,
                    "{}/{}: lifecycle event out of order: {event:?}",
                    spec.name,
                    kind.id()
                );
                observed_span_total += event.cycle - event.start;
            }
            let profile = Profile::from_log(&log, ProfileOptions::default());
            assert_eq!(
                profile.overall.components.span_total(),
                observed_span_total,
                "{}/{}: attributed components leave a residual",
                spec.name,
                kind.id()
            );
            assert_eq!(
                profile.overall.count,
                events.len() as u64,
                "{}/{}: completion count diverged",
                spec.name,
                kind.id()
            );
            // The per-group decompositions tile the overall one.
            let master_sum: u64 = profile
                .masters
                .iter()
                .map(|g| g.components.span_total())
                .sum();
            assert_eq!(
                master_sum,
                observed_span_total,
                "{}/{}: per-master components do not tile the total",
                spec.name,
                kind.id()
            );
        }
    }
}
