//! Integration tests of the multi-bus platform (`ahb-multi`): the
//! threaded scheduler's determinism against the single-threaded
//! reference, drop-in `BusModel` behaviour through the `ahbplus` facade,
//! and the bridge's functional-identity guarantee against the single-bus
//! backends.

use ahb_multi::{BridgeConfig, MultiConfig, MultiSystem, ShardBackendKind, Topology};
use ahbplus::{run_lockstep, PlatformConfig, Simulation};
use analysis::model::BusModel;
use analysis::report::ModelKind;
use proptest::prelude::*;
use simkern::time::CycleDelta;
use traffic::{pattern_shards, ShardMix, TrafficPattern};

fn build(
    backend: ShardBackendKind,
    shards: usize,
    masters: usize,
    mix: ShardMix,
    quantum: u64,
    seed: u64,
    threaded: bool,
) -> MultiSystem {
    let config = MultiConfig::new(backend)
        .with_quantum(quantum)
        .with_threaded(threaded);
    let patterns = pattern_shards(shards, masters, mix);
    MultiSystem::from_shard_patterns(&config, &patterns, 30, seed)
}

/// `mode` = (threaded, spin barrier).
fn build_topology(
    topology: Topology,
    shards: usize,
    masters: usize,
    mix: ShardMix,
    quantum: u64,
    seed: u64,
    mode: (bool, bool),
) -> MultiSystem {
    let config = MultiConfig::from_topology(topology)
        .with_quantum(quantum)
        .with_threaded(mode.0)
        .with_spin_sync(mode.1);
    let patterns = pattern_shards(shards, masters, mix);
    MultiSystem::from_shard_patterns(&config, &patterns, 30, seed)
}

#[test]
fn threaded_and_single_threaded_runs_are_probe_identical_in_lockstep() {
    // The acceptance check of the conservative scheduler: drive the
    // threaded platform and the single-threaded reference in lockstep and
    // require bit-identical observable state at *every* horizon, not just
    // matching end-of-run results.
    for backend in [ShardBackendKind::Tlm, ShardBackendKind::Lt] {
        for mix in [
            ShardMix::LocalHeavy,
            ShardMix::BridgeHeavy,
            ShardMix::AllToAll,
        ] {
            let mut threaded = build(backend, 3, 4, mix, 96, 11, true);
            let mut single = build(backend, 3, 4, mix, 96, 11, false);
            let outcome = run_lockstep(&mut threaded, &mut single, CycleDelta::new(512));
            assert!(
                outcome.is_identical(),
                "{backend:?}/{mix:?}: {}",
                outcome.summary()
            );
            assert!(outcome.results_match);
            assert!(outcome.a.metrics_eq(&outcome.b));
        }
    }
}

#[test]
fn sharded_platform_completes_identical_work_to_the_single_bus_backends() {
    // The drop-in claim through the facade: on the same single-bus
    // workload, the 2-shard partitions complete exactly the work of every
    // single-bus backend (crossings included — pattern A's regions
    // interleave across the 2-way window map, so the bridge is exercised).
    let config = PlatformConfig::new(traffic::pattern_a(), 40, 13);
    let mut tlm = config.build_model(ModelKind::TransactionLevel);
    let mut sharded = config.build_model(ModelKind::ShardedTlm);
    let outcome = run_lockstep(tlm.as_mut(), sharded.as_mut(), CycleDelta::new(256));
    assert!(outcome.results_match, "{}", outcome.summary());
    assert_eq!(
        outcome.a.total_transactions(),
        outcome.b.total_transactions()
    );
    assert_eq!(outcome.a.total_bytes(), outcome.b.total_bytes());
    assert!(
        sharded.probe().bridge_crossings > 0,
        "the partition must exercise the bridge"
    );
}

#[test]
fn sharded_models_report_their_kind_and_names() {
    let config = PlatformConfig::new(traffic::pattern_a(), 10, 5);
    for (kind, name) in [
        (ModelKind::ShardedTlm, "sharded-tlm"),
        (ModelKind::ShardedLt, "sharded-lt"),
        (ModelKind::ShardedHet, "sharded-het"),
        (ModelKind::ShardedTlmReads, "sharded-tlm-reads"),
        (ModelKind::ShardedSkew, "sharded-skew"),
    ] {
        let mut model = config.build_model(kind);
        assert_eq!(model.kind(), kind);
        assert_eq!(model.model_name(), name);
        let report = model.run();
        assert_eq!(report.model, kind);
        assert_eq!(report.total_transactions(), 4 * 10);
    }
}

#[test]
fn heterogeneous_platform_completes_identical_work_to_the_flat_bus() {
    // The topology claim in miniature: 2×tlm + 2×lt shards behind the
    // same bridges complete exactly the work the flat cycle-counting bus
    // completes on the same pattern and seed.
    let config = PlatformConfig::new(traffic::pattern_a(), 40, 13);
    let mut tlm = config.build_model(ModelKind::TransactionLevel);
    let mut het = config.build_model(ModelKind::ShardedHet);
    let outcome = run_lockstep(tlm.as_mut(), het.as_mut(), CycleDelta::new(256));
    assert!(outcome.results_match, "{}", outcome.summary());
    assert_eq!(
        outcome.a.total_transactions(),
        outcome.b.total_transactions()
    );
    assert_eq!(outcome.a.total_bytes(), outcome.b.total_bytes());
}

#[test]
fn non_posted_reads_retire_every_stalled_master() {
    // Same patterns, posted vs non-posted reads: identical functional
    // results, but the non-posted platform carries response traffic —
    // strictly more link crossings (each remote read crosses twice).
    let patterns = pattern_shards(2, 4, ShardMix::ReadHeavy);
    let posted_config = MultiConfig::new(ShardBackendKind::Tlm);
    let reads_config = MultiConfig::from_topology(
        Topology::heterogeneous(vec![ShardBackendKind::Tlm; 2]).with_posted_reads(false),
    );
    let mut posted = MultiSystem::from_shard_patterns(&posted_config, &patterns, 40, 9);
    let mut reads = MultiSystem::from_shard_patterns(&reads_config, &patterns, 40, 9);
    let posted_report = posted.run();
    let reads_report = reads.run();
    assert!(BusModel::finished(&reads), "every stalled master resumes");
    assert_eq!(
        posted_report.total_transactions(),
        reads_report.total_transactions()
    );
    assert_eq!(posted_report.total_bytes(), reads_report.total_bytes());
    assert_eq!(posted.probe().data_beats, reads.probe().data_beats);
    assert!(
        reads.crossings() > posted.crossings(),
        "response legs must add crossings: {} vs {}",
        reads.crossings(),
        posted.crossings()
    );
    // A stalled read pays the round trip: the read-heavy masters' latency
    // must reflect at least one crossing latency each way.
    assert!(
        reads.probe().cycle > posted.probe().cycle,
        "stalling reads lengthen the synchronized span"
    );
}

#[test]
fn skewed_window_map_reroutes_ownership() {
    // Under the skewed map shard 1 owns only every fourth window, so the
    // same round-robin master partition produces a different crossing mix
    // than the interleave — while completing identical work.
    let config = PlatformConfig::new(traffic::pattern_a(), 40, 13);
    let mut flat = config.build_model(ModelKind::TransactionLevel);
    let mut skew = config.build_model(ModelKind::ShardedSkew);
    let outcome = run_lockstep(flat.as_mut(), skew.as_mut(), CycleDelta::new(256));
    assert!(outcome.results_match, "{}", outcome.summary());
    let mut interleaved = config.build_model(ModelKind::ShardedTlm);
    interleaved.run();
    assert_ne!(
        skew.probe().bridge_crossings,
        interleaved.probe().bridge_crossings,
        "a skewed owner table must change the crossing pattern"
    );
}

#[test]
fn uniform_topology_matches_the_legacy_shorthand() {
    // `MultiConfig::new(backend)` is sugar for the uniform topology; the
    // two construction paths must be probe-identical.
    for backend in [ShardBackendKind::Tlm, ShardBackendKind::Lt] {
        let patterns = pattern_shards(2, 4, ShardMix::BridgeHeavy);
        let legacy = MultiConfig::new(backend);
        let topo = MultiConfig::from_topology(Topology::uniform(backend));
        let mut a = MultiSystem::from_shard_patterns(&legacy, &patterns, 40, 9);
        let mut b = MultiSystem::from_shard_patterns(&topo, &patterns, 40, 9);
        a.run();
        b.run();
        assert_eq!(a.probe(), b.probe(), "{backend:?}");
        assert_eq!(a.shard_probes(), b.shard_probes());
    }
}

#[test]
fn asymmetric_links_bound_the_quantum_by_the_fastest_link() {
    let fast = BridgeConfig {
        crossing_latency: 24,
        ..BridgeConfig::ahb_plus()
    };
    let topology = Topology::uniform(ShardBackendKind::Tlm).with_link(1, 0, fast);
    let config = MultiConfig::from_topology(topology);
    let patterns = pattern_shards(2, 4, ShardMix::BridgeHeavy);
    let mut single = MultiSystem::from_shard_patterns(&config, &patterns, 30, 7);
    let mut threaded =
        MultiSystem::from_shard_patterns(&config.clone().with_threaded(true), &patterns, 30, 7);
    assert_eq!(single.quantum(), 24, "quantum follows the fastest link");
    let a = single.run();
    let b = threaded.run();
    assert!(a.metrics_eq(&b), "asymmetric links stay deterministic");
    assert_eq!(single.probe(), threaded.probe());
}

#[test]
fn simulation_snapshots_stream_the_sharded_platform() {
    let config = MultiConfig::new(ShardBackendKind::Lt);
    let patterns = pattern_shards(2, 4, ShardMix::BridgeHeavy);
    let system = MultiSystem::from_shard_patterns(&config, &patterns, 40, 3);
    let mut sim = Simulation::new(system);
    let report = sim.run_with_snapshots(CycleDelta::new(2_000));
    assert!(!sim.snapshots().is_empty());
    for pair in sim.snapshots().windows(2) {
        assert!(pair[0].transactions <= pair[1].transactions);
        assert!(pair[0].bridge_crossings <= pair[1].bridge_crossings);
    }
    let last = sim.snapshots().last().unwrap();
    assert_eq!(last.transactions, report.total_transactions());
}

#[test]
fn tight_fifo_bounds_the_bridge_occupancy() {
    let bridge = BridgeConfig {
        crossing_latency: 200,
        fifo_depth: 2,
        forward_interval: 1,
        slave_cycles: 1,
    };
    let config = MultiConfig::new(ShardBackendKind::Lt).with_bridge(bridge);
    let patterns = pattern_shards(2, 8, ShardMix::BridgeHeavy);
    let mut system = MultiSystem::from_shard_patterns(&config, &patterns, 60, 5);
    system.run();
    let probe = system.probe();
    assert!(probe.bridge_crossings > 0);
    assert!(
        probe.bridge_fifo_peak <= 2,
        "FIFO occupancy {} exceeded the depth",
        probe.bridge_fifo_peak
    );
}

/// The union of the per-shard patterns, for single-bus reference runs.
fn union(patterns: &[TrafficPattern]) -> TrafficPattern {
    TrafficPattern {
        name: patterns[0].name,
        masters: patterns.iter().flat_map(|p| p.masters.clone()).collect(),
    }
}

#[test]
fn sharded_and_flat_platforms_complete_the_same_workload() {
    let patterns = pattern_shards(4, 4, ShardMix::LocalHeavy);
    let flat = PlatformConfig::new(union(&patterns), 25, 17);
    let flat_report = flat.build_tlm().run();
    let config = MultiConfig::new(ShardBackendKind::Tlm);
    let mut sharded = MultiSystem::from_shard_patterns(&config, &patterns, 25, 17);
    let sharded_report = sharded.run();
    assert_eq!(
        flat_report.total_transactions(),
        sharded_report.total_transactions()
    );
    assert_eq!(flat_report.total_bytes(), sharded_report.total_bytes());
    // Sixteen masters over four buses drain in fewer synchronized cycles
    // than over one saturated bus.
    let synchronized = sharded.probe().cycle;
    assert!(
        synchronized < flat_report.total_cycles,
        "sharding must shorten the span: {synchronized} vs {}",
        flat_report.total_cycles
    );
}

#[test]
fn sharded_tlm_outruns_the_flat_single_bus_on_a_bridge_light_workload() {
    // The scaling claim: the same 16-master bridge-light workload, once
    // on one saturated bus and once over four shards. The sharded
    // platform simulates more aggregate bus-cycles per second even
    // single-threaded (four small fast buses instead of one large slow
    // one); threading widens the gap on multi-core hosts. Measured
    // best-of-N against best-of-N to keep scheduler noise out of the
    // comparison.
    let patterns = pattern_shards(4, 4, ShardMix::LocalHeavy);
    let flat_config = PlatformConfig::new(union(&patterns), 400, 2005);
    let best = |run: &mut dyn FnMut() -> f64| (0..3).map(|_| run()).fold(0.0f64, f64::max);
    let flat = best(&mut || flat_config.build_tlm().run().kcycles_per_second());
    let multi_config = MultiConfig::new(ShardBackendKind::Tlm);
    let sharded = best(&mut || {
        MultiSystem::from_shard_patterns(&multi_config, &patterns, 400, 2005)
            .run()
            .kcycles_per_second()
    });
    assert!(
        sharded > flat,
        "sharded TLM must beat the flat bus in aggregate Kcycles/s: {sharded:.0} vs {flat:.0}"
    );
}

proptest! {
    /// The determinism guarantee of the threaded scheduler: across shard
    /// counts, quanta, seeds, backends and traffic mixes, the threaded
    /// platform and the single-threaded reference produce byte-identical
    /// reports and probes.
    #[test]
    fn threaded_scheduler_is_deterministic(
        shards in 1usize..5,
        quantum in prop_oneof![Just(1u64), Just(13u64), Just(64u64), Just(96u64)],
        seed in 0u64..1_000,
        backend_is_tlm in any::<bool>(),
        mix_selector in 0usize..3,
    ) {
        let backend = if backend_is_tlm { ShardBackendKind::Tlm } else { ShardBackendKind::Lt };
        let mix = [ShardMix::LocalHeavy, ShardMix::BridgeHeavy, ShardMix::AllToAll][mix_selector];
        let mut threaded = build(backend, shards, 3, mix, quantum, seed, true);
        let mut single = build(backend, shards, 3, mix, quantum, seed, false);
        let threaded_report = threaded.run();
        let single_report = single.run();
        prop_assert!(threaded_report.metrics_eq(&single_report),
            "threaded run diverged (shards {}, quantum {}, seed {})", shards, quantum, seed);
        prop_assert_eq!(threaded.probe(), single.probe());
        prop_assert_eq!(threaded.shard_probes(), single.shard_probes());
    }

    /// The same guarantee over the *topology* axes: heterogeneous shard
    /// mixes, non-uniform window maps, non-posted read crossings and the
    /// spin barrier all run the identical exchange schedule — the
    /// threaded platform (spinning or blocking) stays byte-identical to
    /// the single-threaded reference.
    #[test]
    fn threaded_topologies_are_deterministic(
        shards in 2usize..5,
        quantum in prop_oneof![Just(1u64), Just(17u64), Just(96u64)],
        seed in 0u64..1_000,
        spin in any::<bool>(),
        posted_reads in any::<bool>(),
        het in any::<bool>(),
        mix_selector in 0usize..4,
    ) {
        let mix = [
            ShardMix::LocalHeavy,
            ShardMix::BridgeHeavy,
            ShardMix::AllToAll,
            ShardMix::ReadHeavy,
        ][mix_selector];
        let backends: Vec<ShardBackendKind> = (0..shards)
            .map(|shard| {
                if het && shard % 2 == 1 { ShardBackendKind::Lt } else { ShardBackendKind::Tlm }
            })
            .collect();
        let topology = Topology::heterogeneous(backends).with_posted_reads(posted_reads);
        let mut threaded =
            build_topology(topology.clone(), shards, 3, mix, quantum, seed, (true, spin));
        let mut single =
            build_topology(topology, shards, 3, mix, quantum, seed, (false, spin));
        let threaded_report = threaded.run();
        let single_report = single.run();
        prop_assert!(threaded_report.metrics_eq(&single_report),
            "topology run diverged (shards {}, quantum {}, seed {}, spin {}, posted_reads {})",
            shards, quantum, seed, spin, posted_reads);
        prop_assert_eq!(threaded.probe(), single.probe());
        prop_assert_eq!(threaded.shard_probes(), single.shard_probes());
    }
}
