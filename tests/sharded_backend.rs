//! Integration tests of the multi-bus platform (`ahb-multi`): the
//! threaded scheduler's determinism against the single-threaded
//! reference, drop-in `BusModel` behaviour through the `ahbplus` facade,
//! and the bridge's functional-identity guarantee against the single-bus
//! backends.

use ahb_multi::{BridgeConfig, MultiConfig, MultiSystem, ShardBackendKind, Topology};
use ahbplus::{run_lockstep, PlatformConfig, Simulation};
use analysis::model::BusModel;
use analysis::report::ModelKind;
use proptest::prelude::*;
use simkern::time::CycleDelta;
use traffic::{pattern_shards, ShardMix, TrafficPattern};

fn build(
    backend: ShardBackendKind,
    shards: usize,
    masters: usize,
    mix: ShardMix,
    quantum: u64,
    seed: u64,
    threaded: bool,
) -> MultiSystem {
    let config = MultiConfig::new(backend)
        .with_quantum(quantum)
        .with_threaded(threaded);
    let patterns = pattern_shards(shards, masters, mix);
    MultiSystem::from_shard_patterns(&config, &patterns, 30, seed)
}

/// `mode` = (threaded, spin barrier, adaptive lookahead).
fn build_topology(
    topology: Topology,
    shards: usize,
    masters: usize,
    mix: ShardMix,
    quantum: u64,
    seed: u64,
    mode: (bool, bool, bool),
) -> MultiSystem {
    let config = MultiConfig::from_topology(topology)
        .with_quantum(quantum)
        .with_threaded(mode.0)
        .with_spin_sync(mode.1)
        .with_lookahead(mode.2);
    let patterns = pattern_shards(shards, masters, mix);
    MultiSystem::from_shard_patterns(&config, &patterns, 30, seed)
}

#[test]
fn threaded_and_single_threaded_runs_are_probe_identical_in_lockstep() {
    // The acceptance check of the conservative scheduler: drive the
    // threaded platform and the single-threaded reference in lockstep and
    // require bit-identical observable state at *every* horizon, not just
    // matching end-of-run results.
    for backend in [ShardBackendKind::Tlm, ShardBackendKind::Lt] {
        for mix in [
            ShardMix::LocalHeavy,
            ShardMix::BridgeHeavy,
            ShardMix::AllToAll,
        ] {
            let mut threaded = build(backend, 3, 4, mix, 96, 11, true);
            let mut single = build(backend, 3, 4, mix, 96, 11, false);
            let outcome = run_lockstep(&mut threaded, &mut single, CycleDelta::new(512));
            assert!(
                outcome.is_identical(),
                "{backend:?}/{mix:?}: {}",
                outcome.summary()
            );
            assert!(outcome.results_match);
            assert!(outcome.a.metrics_eq(&outcome.b));
        }
    }
}

#[test]
fn sharded_platform_completes_identical_work_to_the_single_bus_backends() {
    // The drop-in claim through the facade: on the same single-bus
    // workload, the 2-shard partitions complete exactly the work of every
    // single-bus backend (crossings included — pattern A's regions
    // interleave across the 2-way window map, so the bridge is exercised).
    let config = PlatformConfig::new(traffic::pattern_a(), 40, 13);
    let mut tlm = config.build_model(ModelKind::TransactionLevel);
    let mut sharded = config.build_model(ModelKind::ShardedTlm);
    let outcome = run_lockstep(tlm.as_mut(), sharded.as_mut(), CycleDelta::new(256));
    assert!(outcome.results_match, "{}", outcome.summary());
    assert_eq!(
        outcome.a.total_transactions(),
        outcome.b.total_transactions()
    );
    assert_eq!(outcome.a.total_bytes(), outcome.b.total_bytes());
    assert!(
        sharded.probe().bridge_crossings > 0,
        "the partition must exercise the bridge"
    );
}

#[test]
fn sharded_models_report_their_kind_and_names() {
    let config = PlatformConfig::new(traffic::pattern_a(), 10, 5);
    for (kind, name) in [
        (ModelKind::ShardedTlm, "sharded-tlm"),
        (ModelKind::ShardedTlmLa, "sharded-tlm-la"),
        (ModelKind::ShardedLt, "sharded-lt"),
        (ModelKind::ShardedHet, "sharded-het"),
        (ModelKind::ShardedTlmReads, "sharded-tlm-reads"),
        (ModelKind::ShardedSkew, "sharded-skew"),
    ] {
        let mut model = config.build_model(kind);
        assert_eq!(model.kind(), kind);
        assert_eq!(model.model_name(), name);
        let report = model.run();
        assert_eq!(report.model, kind);
        assert_eq!(report.total_transactions(), 4 * 10);
    }
}

#[test]
fn heterogeneous_platform_completes_identical_work_to_the_flat_bus() {
    // The topology claim in miniature: 2×tlm + 2×lt shards behind the
    // same bridges complete exactly the work the flat cycle-counting bus
    // completes on the same pattern and seed.
    let config = PlatformConfig::new(traffic::pattern_a(), 40, 13);
    let mut tlm = config.build_model(ModelKind::TransactionLevel);
    let mut het = config.build_model(ModelKind::ShardedHet);
    let outcome = run_lockstep(tlm.as_mut(), het.as_mut(), CycleDelta::new(256));
    assert!(outcome.results_match, "{}", outcome.summary());
    assert_eq!(
        outcome.a.total_transactions(),
        outcome.b.total_transactions()
    );
    assert_eq!(outcome.a.total_bytes(), outcome.b.total_bytes());
}

#[test]
fn non_posted_reads_retire_every_stalled_master() {
    // Same patterns, posted vs non-posted reads: identical functional
    // results, but the non-posted platform carries response traffic —
    // strictly more link crossings (each remote read crosses twice).
    let patterns = pattern_shards(2, 4, ShardMix::ReadHeavy);
    let posted_config = MultiConfig::new(ShardBackendKind::Tlm);
    let reads_config = MultiConfig::from_topology(
        Topology::heterogeneous(vec![ShardBackendKind::Tlm; 2]).with_posted_reads(false),
    );
    let mut posted = MultiSystem::from_shard_patterns(&posted_config, &patterns, 40, 9);
    let mut reads = MultiSystem::from_shard_patterns(&reads_config, &patterns, 40, 9);
    let posted_report = posted.run();
    let reads_report = reads.run();
    assert!(BusModel::finished(&reads), "every stalled master resumes");
    assert_eq!(
        posted_report.total_transactions(),
        reads_report.total_transactions()
    );
    assert_eq!(posted_report.total_bytes(), reads_report.total_bytes());
    assert_eq!(posted.probe().data_beats, reads.probe().data_beats);
    assert!(
        reads.crossings() > posted.crossings(),
        "response legs must add crossings: {} vs {}",
        reads.crossings(),
        posted.crossings()
    );
    // A stalled read pays the round trip: the read-heavy masters' latency
    // must reflect at least one crossing latency each way.
    assert!(
        reads.probe().cycle > posted.probe().cycle,
        "stalling reads lengthen the synchronized span"
    );
}

#[test]
fn skewed_window_map_reroutes_ownership() {
    // Under the skewed map shard 1 owns only every fourth window, so the
    // same round-robin master partition produces a different crossing mix
    // than the interleave — while completing identical work.
    let config = PlatformConfig::new(traffic::pattern_a(), 40, 13);
    let mut flat = config.build_model(ModelKind::TransactionLevel);
    let mut skew = config.build_model(ModelKind::ShardedSkew);
    let outcome = run_lockstep(flat.as_mut(), skew.as_mut(), CycleDelta::new(256));
    assert!(outcome.results_match, "{}", outcome.summary());
    let mut interleaved = config.build_model(ModelKind::ShardedTlm);
    interleaved.run();
    assert_ne!(
        skew.probe().bridge_crossings,
        interleaved.probe().bridge_crossings,
        "a skewed owner table must change the crossing pattern"
    );
}

#[test]
fn uniform_topology_matches_the_legacy_shorthand() {
    // `MultiConfig::new(backend)` is sugar for the uniform topology; the
    // two construction paths must be probe-identical.
    for backend in [ShardBackendKind::Tlm, ShardBackendKind::Lt] {
        let patterns = pattern_shards(2, 4, ShardMix::BridgeHeavy);
        let legacy = MultiConfig::new(backend);
        let topo = MultiConfig::from_topology(Topology::uniform(backend));
        let mut a = MultiSystem::from_shard_patterns(&legacy, &patterns, 40, 9);
        let mut b = MultiSystem::from_shard_patterns(&topo, &patterns, 40, 9);
        a.run();
        b.run();
        assert_eq!(a.probe(), b.probe(), "{backend:?}");
        assert_eq!(a.shard_probes(), b.shard_probes());
    }
}

#[test]
fn asymmetric_links_bound_the_quantum_by_the_fastest_link() {
    let fast = BridgeConfig {
        crossing_latency: 24,
        ..BridgeConfig::ahb_plus()
    };
    let topology = Topology::uniform(ShardBackendKind::Tlm).with_link(1, 0, fast);
    let config = MultiConfig::from_topology(topology);
    let patterns = pattern_shards(2, 4, ShardMix::BridgeHeavy);
    let mut single = MultiSystem::from_shard_patterns(&config, &patterns, 30, 7);
    let mut threaded =
        MultiSystem::from_shard_patterns(&config.clone().with_threaded(true), &patterns, 30, 7);
    assert_eq!(single.quantum(), 24, "quantum follows the fastest link");
    let a = single.run();
    let b = threaded.run();
    assert!(a.metrics_eq(&b), "asymmetric links stay deterministic");
    assert_eq!(single.probe(), threaded.probe());
}

#[test]
fn simulation_snapshots_stream_the_sharded_platform() {
    let config = MultiConfig::new(ShardBackendKind::Lt);
    let patterns = pattern_shards(2, 4, ShardMix::BridgeHeavy);
    let system = MultiSystem::from_shard_patterns(&config, &patterns, 40, 3);
    let mut sim = Simulation::new(system);
    let report = sim.run_with_snapshots(CycleDelta::new(2_000));
    assert!(!sim.snapshots().is_empty());
    for pair in sim.snapshots().windows(2) {
        assert!(pair[0].transactions <= pair[1].transactions);
        assert!(pair[0].bridge_crossings <= pair[1].bridge_crossings);
    }
    let last = sim.snapshots().last().unwrap();
    assert_eq!(last.transactions, report.total_transactions());
}

#[test]
fn tight_fifo_bounds_the_bridge_occupancy() {
    let bridge = BridgeConfig {
        crossing_latency: 200,
        fifo_depth: 2,
        forward_interval: 1,
        slave_cycles: 1,
    };
    let config = MultiConfig::new(ShardBackendKind::Lt).with_bridge(bridge);
    let patterns = pattern_shards(2, 8, ShardMix::BridgeHeavy);
    let mut system = MultiSystem::from_shard_patterns(&config, &patterns, 60, 5);
    system.run();
    let probe = system.probe();
    assert!(probe.bridge_crossings > 0);
    assert!(
        probe.bridge_fifo_peak <= 2,
        "FIFO occupancy {} exceeded the depth",
        probe.bridge_fifo_peak
    );
}

/// The union of the per-shard patterns, for single-bus reference runs.
fn union(patterns: &[TrafficPattern]) -> TrafficPattern {
    TrafficPattern {
        name: patterns[0].name,
        masters: patterns.iter().flat_map(|p| p.masters.clone()).collect(),
    }
}

#[test]
fn sharded_and_flat_platforms_complete_the_same_workload() {
    let patterns = pattern_shards(4, 4, ShardMix::LocalHeavy);
    let flat = PlatformConfig::new(union(&patterns), 25, 17);
    let flat_report = flat.build_tlm().run();
    let config = MultiConfig::new(ShardBackendKind::Tlm);
    let mut sharded = MultiSystem::from_shard_patterns(&config, &patterns, 25, 17);
    let sharded_report = sharded.run();
    assert_eq!(
        flat_report.total_transactions(),
        sharded_report.total_transactions()
    );
    assert_eq!(flat_report.total_bytes(), sharded_report.total_bytes());
    // Sixteen masters over four buses drain in fewer synchronized cycles
    // than over one saturated bus.
    let synchronized = sharded.probe().cycle;
    assert!(
        synchronized < flat_report.total_cycles,
        "sharding must shorten the span: {synchronized} vs {}",
        flat_report.total_cycles
    );
}

#[test]
fn sharded_tlm_outruns_the_flat_single_bus_on_a_bridge_light_workload() {
    // The scaling claim: the same 16-master bridge-light workload, once
    // on one saturated bus and once over four shards. The sharded
    // platform simulates more aggregate bus-cycles per second even
    // single-threaded (four small fast buses instead of one large slow
    // one); threading widens the gap on multi-core hosts. Measured
    // best-of-N against best-of-N to keep scheduler noise out of the
    // comparison.
    let patterns = pattern_shards(4, 4, ShardMix::LocalHeavy);
    let flat_config = PlatformConfig::new(union(&patterns), 400, 2005);
    let best = |run: &mut dyn FnMut() -> f64| (0..3).map(|_| run()).fold(0.0f64, f64::max);
    let flat = best(&mut || flat_config.build_tlm().run().kcycles_per_second());
    let multi_config = MultiConfig::new(ShardBackendKind::Tlm);
    let sharded = best(&mut || {
        MultiSystem::from_shard_patterns(&multi_config, &patterns, 400, 2005)
            .run()
            .kcycles_per_second()
    });
    assert!(
        sharded > flat,
        "sharded TLM must beat the flat bus in aggregate Kcycles/s: {sharded:.0} vs {flat:.0}"
    );
}

#[test]
fn lookahead_stretches_quiet_barriers_without_changing_results() {
    // The tentpole claim end to end: on a bridge-light workload the
    // adaptive lookahead must take strictly fewer barriers than the
    // fixed-quantum schedule (stretching through provably quiet spans)
    // while staying probe-identical shard by shard.
    let patterns = pattern_shards(4, 4, ShardMix::LocalHeavy);
    let fixed_config = MultiConfig::new(ShardBackendKind::Tlm);
    let la_config = MultiConfig::new(ShardBackendKind::Tlm).with_lookahead(true);
    let mut fixed = MultiSystem::from_shard_patterns(&fixed_config, &patterns, 40, 17);
    let mut la = MultiSystem::from_shard_patterns(&la_config, &patterns, 40, 17);
    assert_eq!(fixed.model_name(), "sharded-tlm");
    assert_eq!(la.model_name(), "sharded-tlm-la");
    assert_eq!(BusModel::kind(&la), ModelKind::ShardedTlmLa);
    fixed.run();
    la.run();
    assert_eq!(fixed.probe(), la.probe());
    assert_eq!(fixed.shard_probes(), la.shard_probes());
    let fixed_stats = BusModel::sync_stats(&fixed).expect("sharded platforms report sync stats");
    let la_stats = BusModel::sync_stats(&la).expect("sharded platforms report sync stats");
    assert_eq!(fixed_stats.stretched, 0, "fixed mode never stretches");
    assert_eq!(fixed_stats.cycles_gained, 0);
    assert!(
        la_stats.stretched > 0,
        "a bridge-light workload must offer stretchable barriers"
    );
    assert!(la_stats.cycles_gained > 0);
    assert!(
        la_stats.barriers < fixed_stats.barriers,
        "lookahead must remove barriers: {} vs {}",
        la_stats.barriers,
        fixed_stats.barriers
    );
    assert!(la_stats.mean_quantum > fixed_stats.mean_quantum);
    assert_eq!(la_stats.barriers, la.barriers_taken());
    assert_eq!(la_stats.stretched, la.barriers_stretched());
    assert_eq!(la_stats.cycles_gained, la.lookahead_cycles_gained());
}

#[test]
fn per_shard_overrides_slow_the_cold_shard_without_changing_results() {
    // Satellite check of the per-shard parameter overrides: a 2×tlm+2×lt
    // platform whose "cold" transaction-level shard 1 runs a
    // prepare-hint-less DDR (and plain-AHB bus parameters) completes
    // identical work, threaded and single-threaded lockstep-identical —
    // but the override must be visible in the shard's DRAM statistics.
    let backends = vec![
        ShardBackendKind::Tlm,
        ShardBackendKind::Tlm,
        ShardBackendKind::Lt,
        ShardBackendKind::Lt,
    ];
    let topology = Topology::heterogeneous(backends)
        .with_shard_ddr(1, ddrc::DdrConfig::without_interleaving())
        .with_shard_params(1, amba::params::AhbPlusParams::plain_ahb());
    let patterns = pattern_shards(4, 4, ShardMix::LocalHeavy);
    let config = MultiConfig::from_topology(topology);
    let mut uniform = MultiSystem::from_shard_patterns(
        &MultiConfig::from_topology(Topology::heterogeneous(vec![
            ShardBackendKind::Tlm,
            ShardBackendKind::Tlm,
            ShardBackendKind::Lt,
            ShardBackendKind::Lt,
        ])),
        &patterns,
        40,
        17,
    );
    let mut single = MultiSystem::from_shard_patterns(&config, &patterns, 40, 17);
    let mut threaded =
        MultiSystem::from_shard_patterns(&config.clone().with_threaded(true), &patterns, 40, 17);
    let outcome = run_lockstep(&mut threaded, &mut single, CycleDelta::new(512));
    assert!(outcome.is_identical(), "{}", outcome.summary());
    let uniform_report = uniform.run();
    let single_report = single.report();
    assert_eq!(
        uniform_report.total_transactions(),
        single_report.total_transactions(),
        "overrides change timing, never results"
    );
    assert_eq!(uniform_report.total_bytes(), single_report.total_bytes());
    // The cold shard's controller ignores prepare hints, so the platform
    // loses the prepared-hit population the uniform platform enjoys.
    assert!(
        single.probe().dram_prepared_hits < uniform.probe().dram_prepared_hits,
        "the DDR override must be live on shard 3: {} vs {}",
        single.probe().dram_prepared_hits,
        uniform.probe().dram_prepared_hits
    );
}

proptest! {
    /// The determinism guarantee of the threaded scheduler: across shard
    /// counts, quanta, seeds, backends and traffic mixes, the threaded
    /// platform and the single-threaded reference produce byte-identical
    /// reports and probes.
    #[test]
    fn threaded_scheduler_is_deterministic(
        shards in 1usize..5,
        quantum in prop_oneof![Just(1u64), Just(13u64), Just(64u64), Just(96u64)],
        seed in 0u64..1_000,
        backend_is_tlm in any::<bool>(),
        mix_selector in 0usize..3,
    ) {
        let backend = if backend_is_tlm { ShardBackendKind::Tlm } else { ShardBackendKind::Lt };
        let mix = [ShardMix::LocalHeavy, ShardMix::BridgeHeavy, ShardMix::AllToAll][mix_selector];
        let mut threaded = build(backend, shards, 3, mix, quantum, seed, true);
        let mut single = build(backend, shards, 3, mix, quantum, seed, false);
        let threaded_report = threaded.run();
        let single_report = single.run();
        prop_assert!(threaded_report.metrics_eq(&single_report),
            "threaded run diverged (shards {}, quantum {}, seed {})", shards, quantum, seed);
        prop_assert_eq!(threaded.probe(), single.probe());
        prop_assert_eq!(threaded.shard_probes(), single.shard_probes());
    }

    /// The same guarantee over the *topology* axes: heterogeneous shard
    /// mixes, non-uniform window maps, non-posted read crossings, the
    /// spin barrier and the adaptive-lookahead scheduler all run the
    /// identical exchange schedule — the threaded platform (spinning or
    /// blocking) stays byte-identical to the single-threaded reference,
    /// and a lookahead run stays probe-identical to the fixed-quantum
    /// run it accelerates.
    #[test]
    fn threaded_topologies_are_deterministic(
        shards in 2usize..5,
        quantum in prop_oneof![Just(1u64), Just(17u64), Just(96u64)],
        seed in 0u64..1_000,
        spin in any::<bool>(),
        posted_reads in any::<bool>(),
        het in any::<bool>(),
        lookahead in any::<bool>(),
        mix_selector in 0usize..4,
    ) {
        let mix = [
            ShardMix::LocalHeavy,
            ShardMix::BridgeHeavy,
            ShardMix::AllToAll,
            ShardMix::ReadHeavy,
        ][mix_selector];
        let backends: Vec<ShardBackendKind> = (0..shards)
            .map(|shard| {
                if het && shard % 2 == 1 { ShardBackendKind::Lt } else { ShardBackendKind::Tlm }
            })
            .collect();
        let topology = Topology::heterogeneous(backends).with_posted_reads(posted_reads);
        let mut threaded = build_topology(
            topology.clone(), shards, 3, mix, quantum, seed, (true, spin, lookahead));
        let mut single = build_topology(
            topology.clone(), shards, 3, mix, quantum, seed, (false, spin, lookahead));
        let threaded_report = threaded.run();
        let single_report = single.run();
        prop_assert!(threaded_report.metrics_eq(&single_report),
            "topology run diverged (shards {}, quantum {}, seed {}, spin {}, posted_reads {}, \
             lookahead {})",
            shards, quantum, seed, spin, posted_reads, lookahead);
        prop_assert_eq!(threaded.probe(), single.probe());
        prop_assert_eq!(threaded.shard_probes(), single.shard_probes());
        if lookahead {
            // The lookahead schedule must be a pure acceleration of the
            // fixed schedule: every observable except the model label
            // (uniform-TLM platforms report themselves as
            // `sharded-tlm-la`) and the wall clock is unchanged.
            let mut fixed = build_topology(
                topology, shards, 3, mix, quantum, seed, (false, spin, false));
            let fixed_report = fixed.run();
            prop_assert_eq!(single.probe(), fixed.probe(),
                "lookahead diverged from fixed (shards {}, quantum {}, seed {})",
                shards, quantum, seed);
            prop_assert_eq!(single.shard_probes(), fixed.shard_probes());
            prop_assert_eq!(single_report.total_cycles, fixed_report.total_cycles);
            prop_assert_eq!(&single_report.masters, &fixed_report.masters);
            prop_assert_eq!(&single_report.bus, &fixed_report.bus);
        }
    }
}
