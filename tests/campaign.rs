//! Cross-crate integration tests for the campaign subsystem: kill/resume
//! semantics over the journal, content-hash dedupe through the result
//! cache, and the serving mode over a real loopback socket.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use ahbplus::scenario;
use analysis::campaign::PointStatus;
use analysis::report::ModelKind;
use campaign::{Campaign, CampaignServer, CampaignSpec, Journal, JournalEvent, RunOptions};
use proptest::prelude::*;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ahbplus-campaign-it-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_spec(name: &str) -> CampaignSpec {
    CampaignSpec::new(name)
        .with_scenario(scenario("table1-a").unwrap().with_transactions(8))
        .with_model(ModelKind::TransactionLevel)
        .with_model(ModelKind::LooselyTimed)
        .with_seeds(vec![11, 12, 13])
}

/// Count how many `done` lines the journal holds per hash — the
/// exactly-once check a resumable sweep must satisfy.
fn done_counts(path: &std::path::Path) -> BTreeMap<String, usize> {
    let journal = Journal::load(path).expect("journal parses");
    let mut counts = BTreeMap::new();
    for event in &journal.events {
        if let JournalEvent::Done { hash, .. } = event {
            *counts.entry(hash.clone()).or_insert(0) += 1;
        }
    }
    counts
}

/// A kill mid-campaign truncates the journal at an arbitrary byte — the
/// resumed campaign must execute exactly the lost points, exactly once.
#[test]
fn truncated_journal_resumes_to_exactly_once_completion() {
    let dir = fresh_dir("kill-resume");
    let spec = small_spec("kill-resume");
    let campaign = Campaign::create(&dir, spec).unwrap();
    let total = campaign.spec().point_count();
    assert_eq!(total, 6);
    campaign.run(RunOptions::default()).unwrap();
    assert!(campaign.report().unwrap().is_complete());

    // Chop the journal mid-file: keep the header, the session line and
    // two complete `done` lines, plus half of the third — the byte-exact
    // signature of a SIGKILL during an append.
    let journal_path = campaign.journal_path();
    let text = std::fs::read_to_string(&journal_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let keep = &lines[..4];
    let partial = &lines[4][..lines[4].len() / 2];
    std::fs::write(&journal_path, format!("{}\n{partial}", keep.join("\n"))).unwrap();
    // Wipe the cache too, so the lost points must actually re-simulate
    // rather than being served back.
    std::fs::remove_dir_all(dir.join("cache")).unwrap();

    let resumed = Campaign::open(&dir).unwrap();
    assert_eq!(resumed.report().unwrap().pending(), 4);
    let summary = resumed
        .run(RunOptions {
            workers: 2,
            max_points: None,
        })
        .unwrap();
    assert_eq!(summary.executed, 4, "exactly the lost points re-ran");
    assert_eq!(summary.cached, 0);

    let record = resumed.report().unwrap();
    assert!(record.is_complete());
    let counts = done_counts(&journal_path);
    let expected: BTreeSet<String> = resumed
        .spec()
        .expand()
        .into_iter()
        .map(|p| p.hash)
        .collect();
    assert_eq!(counts.len(), expected.len());
    for (hash, count) in &counts {
        assert!(
            expected.contains(hash),
            "journal hash {hash} is a lattice point"
        );
        assert_eq!(*count, 1, "hash {hash} completed exactly once");
    }
    // A further resume finds nothing to do and the journal stays clean.
    let idle = resumed.run(RunOptions::default()).unwrap();
    assert_eq!(idle.executed + idle.cached, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The cache outlives the journal: rebuilding the same campaign after
/// losing only the journal serves every point from the store.
#[test]
fn cache_survives_journal_loss_without_resimulation() {
    let dir = fresh_dir("cache-survives");
    let campaign = Campaign::create(&dir, small_spec("cache-survives")).unwrap();
    let first = campaign.run(RunOptions::default()).unwrap();
    assert_eq!(first.executed, 6);
    std::fs::remove_file(campaign.journal_path()).unwrap();
    let second = campaign.run(RunOptions::default()).unwrap();
    assert_eq!(
        second.executed, 0,
        "no point simulates twice with the cache intact"
    );
    assert_eq!(second.cached, 6);
    let record = campaign.report().unwrap();
    assert!(record
        .points
        .iter()
        .all(|p| p.status == PointStatus::Cached));
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// Whatever the axis shapes — including duplicated entries — a
    /// campaign never simulates the same experiment twice: simulated
    /// points equal distinct content hashes, and a rerun simulates
    /// nothing.
    #[test]
    fn dedupe_simulates_each_distinct_hash_once(
        transactions in 3usize..7,
        seeds in proptest::collection::vec(1u64..4, 1..5),
        workers in 1usize..4,
        two_models in any::<bool>(),
    ) {
        let tag = format!(
            "prop-{transactions}-{workers}-{}-{}",
            seeds.iter().map(u64::to_string).collect::<Vec<_>>().join("_"),
            two_models,
        );
        let dir = fresh_dir(&tag);
        let mut spec = CampaignSpec::new(&tag)
            .with_scenario(scenario("table1-a").unwrap().with_transactions(transactions))
            .with_model(ModelKind::TransactionLevel)
            .with_seeds(seeds);
        if two_models {
            spec = spec.with_model(ModelKind::LooselyTimed);
        }
        let distinct: BTreeSet<String> = spec.expand().into_iter().map(|p| p.hash).collect();
        let campaign = Campaign::create(&dir, spec).unwrap();
        let summary = campaign.run(RunOptions { workers, max_points: None }).unwrap();
        prop_assert_eq!(summary.executed, distinct.len());
        prop_assert_eq!(summary.cached, 0);
        let counts = done_counts(&campaign.journal_path());
        for count in counts.values() {
            prop_assert_eq!(*count, 1);
        }
        let again = campaign.run(RunOptions { workers, max_points: None }).unwrap();
        prop_assert_eq!(again.executed + again.cached, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

fn http_roundtrip(addr: &std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("loopback connects");
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("server closes the connection");
    response
}

/// Serve-mode smoke over a real loopback socket: health, catalogue and a
/// streamed run with probes and the final report line.
#[test]
fn serve_mode_answers_over_loopback() {
    let server = CampaignServer::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve(2, Some(4)));

    let health = http_roundtrip(&addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    let models = http_roundtrip(&addr, "GET /models HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(
        models.contains("\"tlm\"") && models.contains("\"sharded-het\""),
        "{models}"
    );

    use ahbplus::Canonical;
    let spec = scenario("table1-a").unwrap().with_transactions(5);
    let body = format!(
        "{{\"scenario\": {}, \"model\": \"tlm\", \"stride\": 200}}",
        spec.to_canon().to_canonical_json()
    );
    let run = http_roundtrip(
        &addr,
        &format!(
            "POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(run.starts_with("HTTP/1.1 200"), "{run}");
    assert!(run.contains("application/x-ndjson"), "{run}");
    let report_line = run
        .lines()
        .find(|line| line.contains("\"event\": \"report\""))
        .expect("stream ends with a report line");
    assert!(report_line.contains(&format!(
        "\"point_hash\": \"{}\"",
        campaign::point_hash(&spec, ModelKind::TransactionLevel)
    )));
    // Probe lines precede the report when a stride is requested.
    assert!(
        run.lines().any(|line| line.contains("\"cycle\": ")),
        "streamed probes expected: {run}"
    );

    let missing = http_roundtrip(&addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    handle.join().unwrap().expect("serve loop exits cleanly");
}

/// The observability surface of serve mode: a traced `/run` streams its
/// transaction-lifecycle events, and `GET /metrics` answers Prometheus
/// text whose run counters are live — a scrape taken while a scenario
/// executes sees the run in flight, not only its final totals.
#[test]
fn serve_mode_streams_traces_and_live_metrics() {
    use ahbplus::Canonical;
    let server = CampaignServer::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve(2, Some(4)));

    // A small traced run: every lifecycle event comes back as an ndjson
    // line before the report, and the report counts them.
    let spec = scenario("table1-a").unwrap().with_transactions(5);
    let body = format!(
        "{{\"scenario\": {}, \"model\": \"tlm\", \"trace\": true}}",
        spec.to_canon().to_canonical_json()
    );
    let run = http_roundtrip(
        &addr,
        &format!(
            "POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(run.starts_with("HTTP/1.1 200"), "{run}");
    let trace_lines = run
        .lines()
        .filter(|line| line.contains("\"event\": \"trace\""))
        .count();
    assert!(trace_lines > 0, "traced run streams events: {run}");
    assert!(
        run.contains(&format!("\"trace_events\": {trace_lines}")),
        "report counts the streamed events: {run}"
    );

    // A longer pin-accurate run holds a handler busy; scrape /metrics
    // from the second handler once the first probe line proves the run
    // is executing.
    let slow = scenario("table1-a").unwrap().with_transactions(6_000);
    let body = format!(
        "{{\"scenario\": {}, \"model\": \"rtl\", \"stride\": 500}}",
        slow.to_canon().to_canonical_json()
    );
    let mut stream = TcpStream::connect(addr).expect("loopback connects");
    stream
        .write_all(
            format!(
                "POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut partial = Vec::new();
    let mut chunk = [0u8; 4096];
    while !String::from_utf8_lossy(&partial).contains("\"cycle\": ") {
        let n = stream.read(&mut chunk).expect("probe stream stays open");
        assert!(n > 0, "stream ended before the first probe");
        partial.extend_from_slice(&chunk[..n]);
    }
    let metrics = http_roundtrip(&addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
    assert!(metrics.contains("campaign_runs_active 1"), "{metrics}");
    assert!(
        !metrics.contains("campaign_simulated_cycles_total 0\n"),
        "cycles advance during the run: {metrics}"
    );
    let mut rest = String::new();
    stream.read_to_string(&mut rest).expect("run completes");
    assert!(rest.contains("\"event\": \"report\""), "{rest}");

    let final_metrics = http_roundtrip(&addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(
        final_metrics.contains("campaign_runs_completed_total 2"),
        "{final_metrics}"
    );
    assert!(
        final_metrics.contains("campaign_runs_active 0"),
        "{final_metrics}"
    );
    assert!(
        !final_metrics.contains("campaign_trace_events_total 0\n"),
        "traced run counted its events: {final_metrics}"
    );

    handle.join().unwrap().expect("serve loop exits cleanly");
}
