//! Integration tests for the unified `BusModel` facade: lockstep
//! co-simulation, bounded-stepping determinism, and the idle-skip
//! bit-identity guarantee — the run-control contracts every backend must
//! uphold.

use ahbplus::{run_lockstep, scenario, BusModel, PlatformConfig, RtlConfig, Simulation};
use ahbplus::{RtlSystem, TlmSystem};
use simkern::time::CycleDelta;
use traffic::{pattern_a, pattern_c};

/// `step(1)` driven to completion must produce a report identical (up to
/// wall-clock time) to a single `run()`, for both backends.
#[test]
fn single_cycle_stepping_is_deterministic_on_both_backends() {
    let config = PlatformConfig::new(pattern_a(), 30, 7);

    let one_shot_tlm = config.run_tlm();
    let mut stepped_tlm = config.build_tlm();
    while !BusModel::finished(&stepped_tlm) {
        stepped_tlm.step(CycleDelta::new(1));
    }
    assert!(
        one_shot_tlm.metrics_eq(&TlmSystem::report(&mut stepped_tlm)),
        "TLM: step(1) to completion must equal run()"
    );

    let one_shot_rtl = config.run_rtl();
    let mut stepped_rtl = config.build_rtl();
    while !BusModel::finished(&stepped_rtl) {
        stepped_rtl.step(CycleDelta::new(1));
    }
    assert!(
        one_shot_rtl.metrics_eq(&RtlSystem::report(&mut stepped_rtl)),
        "RTL: step(1) to completion must equal run()"
    );
}

/// Arbitrary stride schedules must agree with each other as well.
#[test]
fn mixed_stride_schedules_agree() {
    let config = PlatformConfig::new(pattern_c(), 40, 9);
    let reference = config.run_tlm();
    let mut sim = Simulation::new(config.build_tlm());
    for stride in [1u64, 7, 100, 3, 5_000].iter().cycle() {
        if sim.finished() {
            break;
        }
        sim.step(CycleDelta::new(*stride));
    }
    let (report, snapshots) = sim.into_report();
    assert!(report.metrics_eq(&reference));
    assert!(!snapshots.is_empty());
}

/// Idle-skip (the `Clocked::is_quiescent`/`wake_at` contract wired into
/// the RTL write buffer and DDR slave) must leave reports bit-identical,
/// verified here through full lockstep co-simulation of the two
/// configurations at single-cycle resolution on a catalogue workload.
#[test]
fn idle_skip_lockstep_never_diverges() {
    let config = PlatformConfig::new(pattern_a(), 40, 5);
    let build = |idle_skip: bool| {
        RtlSystem::from_pattern(
            RtlConfig::default().with_idle_skip(idle_skip),
            &config.pattern,
            config.transactions_per_master,
            config.seed,
        )
    };
    let mut skipping = build(true);
    let mut stepping = build(false);
    let outcome = run_lockstep(&mut skipping, &mut stepping, CycleDelta::new(100));
    assert!(
        outcome.is_identical(),
        "idle-skip diverged: {}",
        outcome.summary()
    );
    assert!(outcome.results_match);
    assert!(
        outcome.a.metrics_eq(&outcome.b),
        "reports must be bit-identical"
    );
}

/// Lockstep across abstraction levels: the paper's "results identical"
/// claim — both models complete exactly the same work on every catalogue
/// workload, whatever their transient timing skew.
#[test]
fn rtl_and_tlm_complete_identical_work_under_lockstep() {
    for name in ["table1-a", "table1-b", "table1-c"] {
        let config = scenario(name)
            .expect("catalogued workload")
            .with_transactions(60)
            .resolve()
            .expect("workload resolves");
        let mut rtl = config.build_rtl();
        let mut tlm = config.build_tlm();
        let outcome = run_lockstep(&mut rtl, &mut tlm, CycleDelta::new(512));
        assert!(outcome.results_match, "{name}: {}", outcome.summary());
        assert_eq!(
            outcome.a.total_transactions(),
            outcome.b.total_transactions(),
            "{name}"
        );
        assert_eq!(outcome.a.total_bytes(), outcome.b.total_bytes(), "{name}");
        assert_eq!(outcome.a.bus.assertion_errors, 0, "{name}");
        assert_eq!(outcome.b.bus.assertion_errors, 0, "{name}");
    }
}

/// Two identically seeded instances of the same backend are
/// indistinguishable at every lockstep horizon; a different seed is
/// caught as a divergence.
#[test]
fn lockstep_distinguishes_identical_from_diverging_stimulus() {
    let config = PlatformConfig::new(pattern_a(), 30, 21);
    let mut a = config.build_tlm();
    let mut b = config.build_tlm();
    let same = run_lockstep(&mut a, &mut b, CycleDelta::new(50));
    assert!(same.is_identical());

    let mut a = config.build_tlm();
    let mut b = PlatformConfig::new(pattern_a(), 30, 22).build_tlm();
    let different = run_lockstep(&mut a, &mut b, CycleDelta::new(50));
    assert!(different.first_divergence.is_some());
}
