//! Workspace umbrella for the AHB+ bus-architecture reproduction
//! (conf_date_KimKKSCCKE05).
//!
//! The real code lives in the `crates/` workspace members; this root package
//! only hosts the cross-crate integration tests under `tests/` and the
//! runnable examples under `examples/`. It re-exports the [`ahbplus`] facade
//! so examples and downstream tooling have a single import root.

#![forbid(unsafe_code)]

pub use ahbplus;
