//! Bank interleaving demonstration (paper §2): the Bus Interface forwards
//! the next arbitrated transaction to the DDR controller so the target bank
//! is pre-charged/activated in advance, hiding inter-transaction latency and
//! raising bus utilization.
//!
//! Uses the catalogued `dual-stream` scenario (two DMA streams in
//! different DRAM banks) and reads all DRAM/bus counters from the uniform
//! `BusModel::probe` surface.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus-repro --example bank_interleaving
//! ```

use ahbplus::{scenario, AhbPlusParams, DdrConfig};

fn run(label: &str, bi_hints: bool) {
    let spec = scenario("dual-stream")
        .expect("catalogued scenario")
        .with_params(AhbPlusParams::ahb_plus().with_bi_hints(bi_hints))
        .with_ddr(if bi_hints {
            DdrConfig::ahb_plus()
        } else {
            DdrConfig::without_interleaving()
        });
    let mut system = spec.resolve().expect("scenario resolves").build_tlm();
    let report = system.run();
    let probe = system.probe();
    // Completion of the streaming masters (the periodic video master always
    // runs to its fixed schedule and would mask the difference).
    let streams_done = report
        .masters
        .values()
        .filter(|m| m.label != "video")
        .map(|m| m.last_completion_cycle)
        .max()
        .unwrap_or(0);
    println!(
        "{label:<26} streams done {:>8}  bus busy {:>8} cycles  DRAM hit rate {:>5.1}%  prepared hits {:>5}",
        streams_done,
        probe.busy_cycles,
        probe.dram_hit_rate() * 100.0,
        probe.dram_prepared_hits
    );
}

fn main() {
    println!("two DMA streams + video + writer, DDR-266, 4 banks\n");
    run("BI hints off (plain AHB)", false);
    run("BI hints on (AHB+)", true);
    println!("\nWith the next-transaction hint the controller opens the next bank while");
    println!("the current burst is still on the bus, so more accesses become row hits");
    println!("and the same workload occupies the bus for fewer cycles.");
}
