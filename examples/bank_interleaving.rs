//! Bank interleaving demonstration (paper §2): the Bus Interface forwards
//! the next arbitrated transaction to the DDR controller so the target bank
//! is pre-charged/activated in advance, hiding inter-transaction latency and
//! raising bus utilization.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus --example bank_interleaving
//! ```

use ahbplus::{AhbPlusParams, DdrConfig, PlatformConfig};
use amba::ids::{Addr, MasterId};
use traffic::{MasterProfile, TrafficPattern};

/// Two streaming masters working in different DRAM banks: the ideal
/// candidate for bank interleaving.
fn streaming_pattern() -> TrafficPattern {
    TrafficPattern {
        name: "dual stream",
        masters: vec![
            (MasterId::new(0), MasterProfile::dma_stream()),
            (
                MasterId::new(1),
                MasterProfile::dma_stream().with_region(Addr::new(0x2400_0000), 0x0100_0000),
            ),
            (MasterId::new(2), MasterProfile::video_realtime()),
            (MasterId::new(3), MasterProfile::block_writer()),
        ],
    }
}

fn run(label: &str, bi_hints: bool) {
    let params = AhbPlusParams::ahb_plus().with_bi_hints(bi_hints);
    let ddr = if bi_hints {
        DdrConfig::ahb_plus()
    } else {
        DdrConfig::without_interleaving()
    };
    let config = PlatformConfig::new(streaming_pattern(), 600, 11)
        .with_params(params)
        .with_ddr(ddr);
    let mut system = config.build_tlm();
    let report = system.run();
    let stats = system.ddr().stats();
    // Completion of the streaming masters (the periodic video master always
    // runs to its fixed schedule and would mask the difference).
    let streams_done = report
        .masters
        .values()
        .filter(|m| m.label != "video")
        .map(|m| m.last_completion_cycle)
        .max()
        .unwrap_or(0);
    println!(
        "{label:<26} streams done {:>8}  bus busy {:>8} cycles  DRAM hit rate {:>5.1}%  prepared hits {:>5}",
        streams_done,
        report.bus.busy_cycles,
        stats.hit_rate() * 100.0,
        stats.prepared_hits.value()
    );
}

fn main() {
    println!("two DMA streams + video + writer, DDR-266, 4 banks\n");
    run("BI hints off (plain AHB)", false);
    run("BI hints on (AHB+)", true);
    println!("\nWith the next-transaction hint the controller opens the next bank while");
    println!("the current burst is still on the bus, so more accesses become row hits");
    println!("and the same workload occupies the bus for fewer cycles.");
}
