//! Accuracy validation (Table 1 of the paper) on the co-simulation
//! driver: run the pin-accurate and the transaction-level model in
//! lockstep on identical stimulus for every table1/table2 workload and
//! report, per workload, the first cycle at which their observable state
//! diverges (or confirm it never does), whether the end-of-run results
//! match, and the classic per-metric difference table.
//!
//! This is the paper's §4 claim — "the simulation results were identical"
//! between the two abstraction levels — made operational: divergence is
//! *measured*, not asserted.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus-repro --example accuracy_validation
//! ```

use ahbplus::{run_lockstep, run_lockstep_traced, scenario, AccuracyReport};
use simkern::time::CycleDelta;

fn main() {
    // 500 transactions per master per Table-1 pattern keeps the example
    // under a minute; the benchmark binary `table1_accuracy` runs the
    // full-length version. The table2 speed workload rides along so the
    // co-simulation also covers the §4 configuration.
    let workloads = ["table1-a", "table1-b", "table1-c", "table2-speed"];
    let mut errors = Vec::new();
    for name in workloads {
        let spec = scenario(name).expect("catalogued workload");
        let config = spec.resolve().expect("workload resolves");
        let mut rtl = config.build_rtl();
        let mut tlm = config.build_tlm();
        // 512-cycle lockstep horizons: fine enough to localize divergence
        // to a bus-transaction neighbourhood, coarse enough to stay fast.
        // The traced variant carries the last few lifecycle events of each
        // side into the divergence report, so a mismatch names the
        // transactions around it, not just the probe fields.
        let outcome = run_lockstep_traced(&mut rtl, &mut tlm, CycleDelta::new(512), 6);

        println!("== {name} ({}) ==", config.pattern.name);
        match &outcome.first_divergence {
            None => println!(
                "co-simulation: no observable divergence over {} horizons",
                outcome.horizons
            ),
            Some(d) => println!(
                "co-simulation: first divergence at cycle <= {} in [{}]\n\
                 (transient timing skew between abstraction levels; the run \
                 continues to completion)",
                d.cycle,
                d.fields.join(", ")
            ),
        }
        if let Some(diff) = &outcome.trace_diff {
            print!("{}", diff.format());
        }
        println!(
            "end-of-run results identical (txns/bytes/beats/assertions): {}",
            if outcome.results_match { "yes" } else { "NO" }
        );
        let accuracy = AccuracyReport::compare(config.pattern.name, &outcome.a, &outcome.b);
        errors.push(accuracy.average_error_pct());
        println!("{}", accuracy.format_table());
        assert!(
            outcome.results_match,
            "{name}: both models must complete the same work"
        );

        // The loosely-timed backend rides the same check: identical
        // functional results, with its (larger, documented) timing error
        // quantified by `model_accuracy` / BENCH_accuracy.json.
        let mut tlm = config.build_tlm();
        let mut lt = config.build_lt();
        let lt_outcome = run_lockstep(&mut tlm, &mut lt, CycleDelta::new(512));
        println!(
            "lt vs tlm: results identical: {}, busy-cycle delta {} -> {}\n",
            if lt_outcome.results_match {
                "yes"
            } else {
                "NO"
            },
            lt_outcome.a.bus.busy_cycles,
            lt_outcome.b.bus.busy_cycles
        );
        assert!(
            lt_outcome.results_match,
            "{name}: the loosely-timed model must complete the same work"
        );
    }
    let average = errors.iter().sum::<f64>() / errors.len() as f64;
    println!(
        "overall: average difference {:.2}%  (accuracy {:.1}%)",
        average,
        (100.0 - average).max(0.0)
    );
    println!(
        "paper reference: average difference below 3% (97% accuracy) on the\n\
         authors' proprietary platform; see EXPERIMENTS.md for the discussion\n\
         of where this reproduction diverges."
    );
}
