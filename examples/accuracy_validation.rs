//! Accuracy validation (Table 1 of the paper): run the pin-accurate and the
//! transaction-level model on identical stimulus for every traffic pattern
//! and print the per-metric differences.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus --example accuracy_validation
//! ```

use ahbplus::validation::validate_table1;

fn main() {
    // 500 transactions per master per pattern keeps the example under a
    // minute; the benchmark binary `table1_accuracy` runs the full-length
    // version.
    let table = validate_table1(500, 7);
    println!("{}", table.format_table());
    println!(
        "paper reference: average difference below 3% (97% accuracy) on the\n\
         authors' proprietary platform; see EXPERIMENTS.md for the discussion\n\
         of where this reproduction diverges."
    );
}
