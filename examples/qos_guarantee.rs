//! QoS guarantee demonstration (paper §2): plain AMBA 2.0 AHB cannot bound
//! the grant latency of a latency-critical master, AHB+ can.
//!
//! The real-time video master is demoted to the *worst* fixed priority so
//! that a plain fixed-priority arbiter starves it behind the streaming
//! masters, and then the same workload is run with the full AHB+ filter
//! chain (real-time class + QoS-urgency filters).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus --example qos_guarantee
//! ```

use ahbplus::{AhbPlusParams, ArbiterConfig, PlatformConfig};
use amba::ids::{Addr, MasterId};
use traffic::{MasterProfile, ReleasePolicy, TrafficPattern};

/// A stress pattern: the video master has the worst fixed priority and two
/// aggressive streaming masters plus a busy writer compete with it.
fn stress_pattern() -> TrafficPattern {
    let mut video = MasterProfile::video_realtime();
    video.fixed_priority = 7; // worst priority: only the QoS filters can save it
    let aggressive_dma = MasterProfile::dma_stream().with_release(ReleasePolicy::ClosedLoop {
        min_gap: 0,
        max_gap: 2,
    });
    let second_dma = aggressive_dma
        .clone()
        .with_region(Addr::new(0x2400_0000), 0x0100_0000);
    let busy_writer = MasterProfile::block_writer().with_release(ReleasePolicy::ClosedLoop {
        min_gap: 0,
        max_gap: 8,
    });
    TrafficPattern {
        name: "qos stress",
        masters: vec![
            (MasterId::new(0), aggressive_dma),
            (MasterId::new(1), video),
            (MasterId::new(2), second_dma),
            (MasterId::new(3), busy_writer),
        ],
    }
}

fn run(label: &str, arbiter: ArbiterConfig) {
    let params = AhbPlusParams::ahb_plus().with_arbiter(arbiter);
    let config = PlatformConfig::new(stress_pattern(), 400, 3).with_params(params);
    let report = config.run_tlm();
    let video = report
        .masters
        .values()
        .find(|m| m.label == "video")
        .expect("video master");
    println!(
        "{label:<28} avg grant latency {:>7.1}  max latency {:>7.1}  QoS violations {:>4} / {}",
        video.avg_grant_latency, video.max_latency, video.qos_violations, video.completed
    );
}

fn main() {
    println!("video master demoted to the worst fixed priority, QoS objective = 200 cycles\n");
    run("plain AHB (fixed priority)", ArbiterConfig::plain_ahb_fixed_priority());
    run("AHB+ (QoS filter chain)", ArbiterConfig::ahb_plus());
    println!("\nAHB+ keeps the real-time master inside its objective even when its");
    println!("fixed priority would otherwise starve it — the guarantee plain AMBA 2.0");
    println!("cannot give (paper §2).");
}
