//! QoS guarantee demonstration (paper §2): plain AMBA 2.0 AHB cannot bound
//! the grant latency of a latency-critical master, AHB+ can.
//!
//! The catalogued `qos-stress` scenario demotes the real-time video master
//! to the *worst* fixed priority so that a plain fixed-priority arbiter
//! starves it behind the streaming masters; the same stimulus is then run
//! with the full AHB+ filter chain (real-time class + QoS-urgency
//! filters).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus-repro --example qos_guarantee
//! ```

use ahbplus::{scenario, AhbPlusParams, ArbiterConfig};

fn run(label: &str, arbiter: ArbiterConfig) {
    let spec = scenario("qos-stress")
        .expect("catalogued stress scenario")
        .with_params(AhbPlusParams::ahb_plus().with_arbiter(arbiter));
    let report = spec.resolve().expect("scenario resolves").run_tlm();
    let video = report
        .masters
        .values()
        .find(|m| m.label == "video")
        .expect("video master");
    println!(
        "{label:<28} avg grant latency {:>7.1}  max latency {:>7.1}  QoS violations {:>4} / {}",
        video.avg_grant_latency, video.max_latency, video.qos_violations, video.completed
    );
}

fn main() {
    println!("video master demoted to the worst fixed priority, QoS objective = 200 cycles\n");
    run(
        "plain AHB (fixed priority)",
        ArbiterConfig::plain_ahb_fixed_priority(),
    );
    run("AHB+ (QoS filter chain)", ArbiterConfig::ahb_plus());
    println!("\nAHB+ keeps the real-time master inside its objective even when its");
    println!("fixed priority would otherwise starve it — the guarantee plain AMBA 2.0");
    println!("cannot give (paper §2).");
}
