//! Quickstart: resolve a named scenario, drive the transaction-level
//! model through the unified `BusModel` facade, read the results from a
//! probe and the final report — then run the *same* scenario on every
//! spectrum point (pin-accurate, transaction-level, loosely-timed, and
//! the sharded multi-bus platforms) to see the speed/accuracy trade-off.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus-repro --example quickstart
//! ```

use ahbplus::{scenario, ModelKind, Simulation};
use simkern::time::CycleDelta;

fn main() {
    // Every standard experiment is a named scenario: pattern, bus
    // parameters (all seven arbitration filters, write buffer depth 4,
    // request pipelining, BI hints), DDR device, workload length and
    // seed, resolvable into a platform that builds either backend.
    let spec = scenario("table1-a").expect("catalogued scenario");
    let config = spec.resolve().expect("scenario resolves");

    // Drive the transaction-level model — the fast one you would use for
    // day-to-day performance analysis — in bounded slices, taking a
    // snapshot of the observable state every 50k cycles.
    let mut sim = Simulation::new(config.build_tlm());
    let report = sim.run_with_snapshots(CycleDelta::new(50_000));

    println!("== transaction-level AHB+ run ({}) ==", spec.name);
    println!("{}", report.format_table());

    println!("progress snapshots ({}):", sim.snapshots().len());
    for probe in sim.snapshots() {
        println!(
            "  cycle {:>8}  {:>5} txns  {:>9} bytes  wbuf fill {}",
            probe.cycle, probe.transactions, probe.bytes, probe.write_buffer_fill
        );
    }

    // The probe is the uniform observability surface: the same fields,
    // from any backend, at any point of the run.
    let end = sim.model().probe();
    println!(
        "DRAM row-hit rate: {:.1}%  (prepared hits from BI hints: {})",
        end.dram_hit_rate() * 100.0,
        end.dram_prepared_hits
    );
    println!(
        "write buffer: {} absorbed, {} drained, peak occupancy {}",
        end.write_buffer_absorbed, end.write_buffer_drained, end.write_buffer_peak
    );
    println!(
        "assertions: {} errors, {} warnings",
        end.assertion_errors, end.assertion_warnings
    );

    // The model spectrum: the same scenario, every abstraction level,
    // one loop — `ModelKind::ALL` orders them from most timing-accurate
    // (`rtl`) to the multi-bus platforms (`sharded-tlm`/`sharded-lt`,
    // which split the same masters over two bridged buses). The
    // completed work is identical on every point; wall-clock time and
    // timing-derived counters are where they differ. A further backend
    // would appear here (and in every benchmark artifact) by
    // implementing `BusModel` and registering in
    // `ahbplus::speed::standard_models`.
    println!("\n== the same scenario across the model spectrum ==");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>14}",
        "model", "txns", "cycles", "busy", "Kcycles/s"
    );
    for kind in ModelKind::ALL {
        let mut model = config.build_model(kind);
        let report = model.run();
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>14.0}",
            model.model_name(),
            report.total_transactions(),
            report.total_cycles,
            report.bus.busy_cycles,
            report.kcycles_per_second()
        );
    }
}
