//! Quickstart: build a small AHB+ platform, run the transaction-level model
//! and print the profiling report.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus --example quickstart
//! ```

use ahbplus::PlatformConfig;
use traffic::pattern_a;

fn main() {
    // A platform with the default AHB+ bus (all seven arbitration filters,
    // write buffer depth 4, request pipelining, BI hints) and the balanced
    // multimedia traffic pattern: CPU + real-time video + DMA + block writer.
    let config = PlatformConfig::new(pattern_a(), 500, 42);

    // Run the transaction-level model — the fast one you would use for
    // day-to-day performance analysis.
    let mut system = config.build_tlm();
    let report = system.run();

    println!("== transaction-level AHB+ run ==");
    println!("{}", report.format_table());
    println!(
        "DRAM row-hit rate: {:.1}%  (prepared hits from BI hints: {})",
        system.ddr().stats().hit_rate() * 100.0,
        system.ddr().stats().prepared_hits.value()
    );
    println!(
        "write buffer: {} absorbed, {} drained, peak occupancy {}",
        system.write_buffer().absorbed(),
        system.write_buffer().drained(),
        system.write_buffer().peak_fill()
    );
    println!(
        "assertions: {} errors, {} warnings",
        system.assertions().error_count(),
        system.assertions().warning_count()
    );
}
