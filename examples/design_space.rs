//! Design-space exploration with the transaction-level model (paper §3.7):
//! sweep the write-buffer depth and the arbitration configuration and watch
//! how completion time moves — driven by the campaign engine, so the
//! sweep is resumable and content-addressed.
//!
//! The sweep is a `CampaignSpec`: nine declarative `ScenarioSpec`
//! variants derived from the catalogued `design-space` baseline, crossed
//! with the transaction-level backend. Each lattice point is hashed over
//! its label-free canonical encoding, journaled when done, and its probe
//! timeline streamed to `timelines/<hash>.jsonl` — a long sweep holds
//! one point in memory per worker, not a snapshot vector per point.
//!
//! This is the use case transaction-level modeling exists for: each
//! configuration point takes milliseconds instead of the minutes a
//! pin-accurate run would need — and because results are content-hashed,
//! re-running the example (or renaming a sweep point) serves every
//! already-explored configuration from the cache instead of simulating.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus-repro --example design_space
//! ```
//!
//! Run it a second time to see the journal make the re-run a no-op.

use ahbplus::{scenario, AhbPlusParams, ArbiterConfig, ArbitrationFilter, ScenarioSpec};
use campaign::{Campaign, CampaignSpec, RunOptions};

/// The sweep, one section per dimension explored.
fn sweep() -> Vec<(&'static str, Vec<ScenarioSpec>)> {
    let base = scenario("design-space").expect("catalogued baseline");
    let depths = [0usize, 2, 4, 8]
        .into_iter()
        .map(|depth| {
            base.clone()
                .named(&format!("write buffer depth {depth}"))
                .with_params(AhbPlusParams::ahb_plus().with_write_buffer_depth(depth))
        })
        .collect();
    let ablations = vec![
        base.clone().named("full AHB+"),
        base.clone()
            .named("no request pipelining")
            .with_params(AhbPlusParams::ahb_plus().with_request_pipelining(false)),
        base.clone().named("no bank-affinity filter").with_params(
            AhbPlusParams::ahb_plus()
                .with_arbiter(ArbiterConfig::ahb_plus().without(ArbitrationFilter::BankAffinity)),
        ),
        base.clone().named("no QoS filters").with_params(
            AhbPlusParams::ahb_plus().with_arbiter(
                ArbiterConfig::ahb_plus()
                    .without(ArbitrationFilter::QosUrgency)
                    .without(ArbitrationFilter::RealTimeClass),
            ),
        ),
        base.named("plain AMBA 2.0 AHB")
            .with_params(AhbPlusParams::plain_ahb()),
    ];
    vec![
        ("-- write buffer depth sweep (all filters on) --", depths),
        ("-- arbitration / feature ablations --", ablations),
    ]
}

fn main() {
    let base = scenario("design-space").expect("catalogued baseline");
    println!(
        "write-heavy {}, {} transactions per master",
        base.resolve().expect("baseline resolves").pattern.name,
        base.transactions_per_master
    );

    // Every sweep point becomes a campaign scenario; the campaign engine
    // owns execution order, journaling, the result cache and the
    // streamed per-point timelines.
    let mut spec = CampaignSpec::new("design-space-example")
        .with_model(ahbplus::ModelKind::TransactionLevel)
        .with_snapshot_stride(2_000);
    let sections = sweep();
    for (_, points) in &sections {
        for point in points {
            spec = spec.with_scenario(point.clone());
        }
    }

    let dir = std::env::temp_dir().join("design_space_campaign");
    let campaign = Campaign::create(&dir, spec).expect("campaign directory creates");
    let summary = campaign
        .run(RunOptions {
            workers: 2,
            max_points: None,
        })
        .expect("sweep completes");

    let record = campaign.report().expect("journal aggregates");
    for (section, points) in &sections {
        println!("\n{section}");
        for point in points {
            let row = record
                .points
                .iter()
                .find(|r| r.label.starts_with(&point.name))
                .expect("every sweep point is in the report");
            println!(
                "{:<34} [{}] total cycles {:>8}  {:>5} txns  {:>8} bytes  hash {}",
                point.name,
                row.status.id(),
                row.total_cycles,
                row.transactions,
                row.bytes,
                row.hash
            );
        }
    }

    let distinct: std::collections::BTreeSet<_> =
        record.points.iter().map(|r| r.hash.as_str()).collect();
    println!(
        "\n{} sweep points, {} distinct experiments (identical configurations \
         dedupe by content hash)",
        record.points.len(),
        distinct.len()
    );
    println!(
        "{} simulated, {} served from the result cache ({:.3}s wall)",
        summary.executed,
        summary.cached,
        summary.wall_micros as f64 / 1e6
    );
    println!(
        "campaign directory: {} (journal, cache, per-point timelines)",
        dir.display()
    );
    if summary.executed + summary.cached == 0 {
        println!(
            "journal already records every point — nothing to simulate \
             (delete the directory for a fresh sweep)."
        );
    } else if summary.cached > 0 {
        println!("cache hits: those configurations were already explored — no re-simulation.");
    } else {
        println!("run the example again: the journal makes the re-run a no-op.");
    }
}
