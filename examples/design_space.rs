//! Design-space exploration with the transaction-level model (paper §3.7):
//! sweep the write-buffer depth and the arbitration configuration and watch
//! how completion time, utilization and the real-time master's latency move.
//!
//! This is the use case transaction-level modeling exists for: each
//! configuration point takes milliseconds instead of the minutes a
//! pin-accurate run would need.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus --example design_space
//! ```

use ahbplus::{AhbPlusParams, ArbiterConfig, ArbitrationFilter, PlatformConfig};
use traffic::pattern_c;

fn run(label: &str, params: AhbPlusParams) {
    let config = PlatformConfig::new(pattern_c(), 400, 21).with_params(params);
    let report = config.run_tlm();
    let video = report
        .masters
        .values()
        .find(|m| m.label == "video")
        .expect("video master");
    // Completion of everything except the fixed-schedule video master.
    let workload_done = report
        .masters
        .values()
        .filter(|m| m.label != "video")
        .map(|m| m.last_completion_cycle)
        .max()
        .unwrap_or(0);
    println!(
        "{label:<34} workload done {:>8}  bus busy {:>8}  wbuf hits {:>5}  video avg lat {:>6.1}",
        workload_done,
        report.bus.busy_cycles,
        report.bus.write_buffer_hits,
        video.avg_latency
    );
}

fn main() {
    println!("write-heavy pattern C, 400 transactions per master\n");

    println!("-- write buffer depth sweep (all filters on) --");
    for depth in [0usize, 2, 4, 8] {
        run(
            &format!("write buffer depth {depth}"),
            AhbPlusParams::ahb_plus().with_write_buffer_depth(depth),
        );
    }

    println!("\n-- arbitration / feature ablations --");
    run("full AHB+", AhbPlusParams::ahb_plus());
    run(
        "no request pipelining",
        AhbPlusParams::ahb_plus().with_request_pipelining(false),
    );
    run(
        "no bank-affinity filter",
        AhbPlusParams::ahb_plus()
            .with_arbiter(ArbiterConfig::ahb_plus().without(ArbitrationFilter::BankAffinity)),
    );
    run(
        "no QoS filters",
        AhbPlusParams::ahb_plus().with_arbiter(
            ArbiterConfig::ahb_plus()
                .without(ArbitrationFilter::QosUrgency)
                .without(ArbitrationFilter::RealTimeClass),
        ),
    );
    run("plain AMBA 2.0 AHB", AhbPlusParams::plain_ahb());
}
