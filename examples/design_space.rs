//! Design-space exploration with the transaction-level model (paper §3.7):
//! sweep the write-buffer depth and the arbitration configuration and watch
//! how completion time, utilization and the real-time master's latency move.
//!
//! The sweep iterates over declarative `ScenarioSpec` variants derived
//! from the catalogued `design-space` baseline — each configuration point
//! is data, not hand-wired setup code — and every point runs through the
//! unified `BusModel` facade, so swapping in a different backend (or
//! comparing two) needs no changes here.
//!
//! This is the use case transaction-level modeling exists for: each
//! configuration point takes milliseconds instead of the minutes a
//! pin-accurate run would need. Every point's mid-run timeline is
//! *streamed* to a CSV file through a `SnapshotSink` — a long sweep
//! holds one probe in memory, not a snapshot vector per point.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus-repro --example design_space
//! ```

use std::io::BufWriter;

use ahbplus::{
    scenario, AhbPlusParams, ArbiterConfig, ArbitrationFilter, CsvSnapshotSink, ScenarioSpec,
    Simulation,
};
use simkern::time::CycleDelta;

/// The sweep, one section per dimension explored.
fn sweep() -> Vec<(&'static str, Vec<ScenarioSpec>)> {
    let base = scenario("design-space").expect("catalogued baseline");
    let depths = [0usize, 2, 4, 8]
        .into_iter()
        .map(|depth| {
            base.clone()
                .named(&format!("write buffer depth {depth}"))
                .with_params(AhbPlusParams::ahb_plus().with_write_buffer_depth(depth))
        })
        .collect();
    let ablations = vec![
        base.clone().named("full AHB+"),
        base.clone()
            .named("no request pipelining")
            .with_params(AhbPlusParams::ahb_plus().with_request_pipelining(false)),
        base.clone().named("no bank-affinity filter").with_params(
            AhbPlusParams::ahb_plus()
                .with_arbiter(ArbiterConfig::ahb_plus().without(ArbitrationFilter::BankAffinity)),
        ),
        base.clone().named("no QoS filters").with_params(
            AhbPlusParams::ahb_plus().with_arbiter(
                ArbiterConfig::ahb_plus()
                    .without(ArbitrationFilter::QosUrgency)
                    .without(ArbitrationFilter::RealTimeClass),
            ),
        ),
        base.named("plain AMBA 2.0 AHB")
            .with_params(AhbPlusParams::plain_ahb()),
    ];
    vec![
        ("-- write buffer depth sweep (all filters on) --", depths),
        ("-- arbitration / feature ablations --", ablations),
    ]
}

fn main() {
    let base = scenario("design-space").expect("catalogued baseline");
    println!(
        "write-heavy {}, {} transactions per master",
        base.resolve().expect("baseline resolves").pattern.name,
        base.transactions_per_master
    );
    // One shared timeline file for the whole sweep; rows are tagged with
    // the sweep-point label so plots can facet by configuration.
    let timeline_path = std::env::temp_dir().join("design_space_timeline.csv");
    let timeline = std::fs::File::create(&timeline_path).expect("timeline file creates");
    let mut sink = CsvSnapshotSink::new(BufWriter::new(timeline));
    for (section, points) in sweep() {
        println!("\n{section}");
        for spec in points {
            let config = spec.resolve().expect("sweep point resolves");
            // The sweep holds each point as `dyn BusModel` — the trait is
            // the whole interface a configuration point needs.
            let mut sim = Simulation::new(config.build_model(ahbplus::ModelKind::TransactionLevel));
            sink.set_label(&spec.name);
            let report = sim
                .run_streaming(CycleDelta::new(2_000), &mut sink)
                .expect("timeline sink writes");
            let video = report
                .masters
                .values()
                .find(|m| m.label == "video")
                .expect("video master");
            // Completion of everything except the fixed-schedule video
            // master.
            let workload_done = report
                .masters
                .values()
                .filter(|m| m.label != "video")
                .map(|m| m.last_completion_cycle)
                .max()
                .unwrap_or(0);
            println!(
                "{:<34} workload done {:>8}  bus busy {:>8}  wbuf hits {:>5}  video avg lat {:>6.1}",
                spec.name,
                workload_done,
                report.bus.busy_cycles,
                report.bus.write_buffer_hits,
                video.avg_latency
            );
        }
    }
    // Flush explicitly so a write failure surfaces instead of being
    // swallowed by BufWriter::drop after the success message.
    use std::io::Write as _;
    sink.into_inner()
        .flush()
        .expect("timeline file flushes completely");
    println!(
        "\nper-point timelines streamed to {} (label column = sweep point)",
        timeline_path.display()
    );
}
