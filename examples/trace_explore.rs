//! Trace exploration: switch on the event-tracing subsystem, run a
//! single-bus and a sharded platform, and walk the analytics surface
//! end to end — the `analysis::profile` latency attribution (where
//! every transaction's cycles went, per master and per shard), the
//! compact `.ahbt` binary container and its streaming reader, the A/B
//! `ProfileDiff` that proves a scheduler change didn't alter simulated
//! behaviour, and the Perfetto export.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus-repro --example trace_explore [PERFETTO_OUT]
//! ```
//!
//! With an argument, the sharded platform's trace is written there as
//! Chrome-trace/Perfetto JSON (load it at <https://ui.perfetto.dev>).

use ahbplus::{BusModel, MultiConfig, MultiSystem, PlatformConfig, ShardBackendKind};
use analysis::profile::{Profile, ProfileDiff, ProfileOptions};
use analysis::trace::TraceLog;
use analysis::tracebin::TraceReader;
use traffic::{pattern_a, pattern_shards, ShardMix};

/// Builds the 4×4 sharded platform of the speed table; `lookahead`
/// selects fixed-quantum vs adaptive-lookahead synchronization.
fn sharded(config: &PlatformConfig, lookahead: bool) -> MultiSystem {
    let multi = MultiConfig::new(ShardBackendKind::Tlm)
        .with_params(config.params.clone())
        .with_ddr(config.ddr)
        .with_max_cycles(config.max_cycles)
        .with_lookahead(lookahead);
    MultiSystem::from_shard_patterns(
        &multi,
        &pattern_shards(4, 4, ShardMix::LocalHeavy),
        config.transactions_per_master,
        config.seed,
    )
}

fn main() {
    let config = PlatformConfig::new(pattern_a(), 200, 7);

    // -- Single bus: run traced, then ask where the cycles went. --------
    let mut tlm = config.build_tlm();
    tlm.set_tracing(true);
    tlm.run();
    let log = tlm.take_trace().expect("tracing was enabled");
    let profile = Profile::from_log(&log, ProfileOptions::default());
    println!("== tlm attribution ==");
    print!("{}", profile.format_table());

    // -- The compact binary container. ----------------------------------
    // `.ahbt` is the storage form for million-transaction runs: the same
    // events, delta-encoded, at a fraction of the JSON-lines size — and
    // the reader streams with bounded memory, so a profile can be built
    // without ever materializing the log.
    let binary = log.to_binary();
    let json = log.to_json_lines();
    println!(
        "\n.ahbt: {} bytes vs {} bytes JSON-lines ({:.0}% of the size)",
        binary.len(),
        json.len(),
        binary.len() as f64 / json.len() as f64 * 100.0
    );
    let mut streamed = analysis::profile::ProfileBuilder::new(ProfileOptions::default());
    for event in TraceReader::new(binary.as_slice()).expect("valid header") {
        streamed.add(&event.expect("valid stream"));
    }
    let round_trip = TraceLog::read_binary(binary.as_slice()).expect("valid .ahbt");
    assert_eq!(
        round_trip.to_json_lines(),
        json,
        "binary round trip must be byte-exact"
    );
    assert_eq!(
        streamed.finish(),
        profile,
        "a streamed profile equals the in-memory one"
    );
    println!("round trip byte-exact, streamed profile identical: yes");

    // -- Sharded platform: the diff as a schedule-independence proof. ---
    // The fixed-quantum and adaptive-lookahead schedulers synchronize
    // differently but must simulate identical behaviour; diffing their
    // attribution profiles checks exactly the master-visible surface.
    let mut fixed = sharded(&config, false);
    fixed.set_tracing(true);
    fixed.run();
    let fixed_profile = Profile::from_log(&fixed.take_trace_log(), ProfileOptions::default());
    let mut lookahead = sharded(&config, true);
    lookahead.set_tracing(true);
    lookahead.run();
    let lookahead_log = lookahead.take_trace_log();
    let lookahead_profile = Profile::from_log(&lookahead_log, ProfileOptions::default());

    println!("\n== sharded 4x4: fixed vs lookahead ==");
    let diff = ProfileDiff::between(&fixed_profile, &lookahead_profile);
    print!("{}", diff.format_table());
    assert!(
        diff.identical_distributions,
        "lookahead must not change simulated behaviour"
    );
    println!(
        "scheduler events differ ({} fixed vs {} lookahead) — distributions don't",
        fixed_profile.scheduler_events, lookahead_profile.scheduler_events
    );

    // -- Perfetto export. ------------------------------------------------
    let perfetto = lookahead_log.to_perfetto_json("sharded-tlm-la-4x4");
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &perfetto).expect("write Perfetto JSON");
            println!("Perfetto trace written to {path} (open at ui.perfetto.dev)");
        }
        None => println!(
            "Perfetto export: {} bytes (pass a path to write it)",
            perfetto.len()
        ),
    }
}
