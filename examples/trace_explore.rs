//! Trace exploration: switch on the event-tracing subsystem, run a
//! single-bus and a sharded platform, and walk everything the trace
//! surface offers — lifecycle spans, bridge legs, scheduler events, the
//! derived counter/histogram registry, the determinism contract, and the
//! Perfetto export.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ahbplus-repro --example trace_explore [PERFETTO_OUT]
//! ```
//!
//! With an argument, the sharded platform's trace is written there as
//! Chrome-trace/Perfetto JSON (load it at <https://ui.perfetto.dev>).

use ahbplus::{BusModel, MultiConfig, MultiSystem, PlatformConfig, ShardBackendKind};
use traffic::{pattern_a, pattern_shards, ShardMix};

/// Builds the 4×4 adaptive-lookahead sharded platform of the speed table.
fn sharded(config: &PlatformConfig, threaded: bool) -> MultiSystem {
    let multi = MultiConfig::new(ShardBackendKind::Tlm)
        .with_params(config.params.clone())
        .with_ddr(config.ddr)
        .with_max_cycles(config.max_cycles)
        .with_threaded(threaded)
        .with_lookahead(true);
    MultiSystem::from_shard_patterns(
        &multi,
        &pattern_shards(4, 4, ShardMix::LocalHeavy),
        config.transactions_per_master,
        config.seed,
    )
}

fn main() {
    let config = PlatformConfig::new(pattern_a(), 200, 7);

    // -- Single bus: lifecycle spans and the derived registry. ----------
    let mut tlm = config.build_tlm();
    tlm.set_tracing(true);
    tlm.run();
    let log = tlm.take_trace().expect("tracing was enabled");
    println!("== tlm trace ({} events) ==", log.events.len());
    for event in log.events.iter().take(8) {
        println!("  {}", event.to_json_line());
    }
    println!("  ...");
    let metrics = log.metrics();
    print!("{}", metrics.format_summary());

    // The window helper behind lockstep divergence reports: the last few
    // events at or before a cycle of interest.
    let mid = log.events[log.events.len() / 2].cycle;
    println!("last 4 events at or before cycle {mid}:");
    for event in log.window_before(mid, 4) {
        println!("  {}", event.to_json_line());
    }

    // -- Sharded platform: bridge legs, scheduler events, determinism. --
    let mut single = sharded(&config, false);
    single.set_tracing(true);
    single.run();
    let single_log = single.take_trace_log();
    let mut threaded = sharded(&config, true);
    threaded.set_tracing(true);
    threaded.run();
    let threaded_log = threaded.take_trace_log();

    let counters = single_log.metrics().counters;
    println!(
        "\n== sharded-tlm-la-4x4 trace ({} events) ==",
        single_log.events.len()
    );
    println!(
        "spans {}, absorbs {}, drains {}, crossings {}, replays {}, responses {}",
        counters.spans,
        counters.absorbed,
        counters.drained,
        counters.crossings,
        counters.replays,
        counters.responses
    );
    println!(
        "scheduler: {} barriers, {} lookahead stretches",
        counters.barriers, counters.stretches
    );
    println!(
        "peaks: write buffer {}, bridge FIFO {}",
        counters.write_buffer_peak, counters.bridge_fifo_peak
    );

    // The determinism contract, checked live: the merged shard streams
    // are byte-identical whether the scheduler ran in-line or threaded.
    let identical = single_log.to_json_lines() == threaded_log.to_json_lines();
    println!(
        "single-threaded vs threaded merged streams byte-identical: {}",
        if identical { "yes" } else { "NO" }
    );
    assert!(identical, "scheduler modes must not change the trace");

    // -- Perfetto export. ------------------------------------------------
    let perfetto = single_log.to_perfetto_json("sharded-tlm-la-4x4");
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &perfetto).expect("write Perfetto JSON");
            println!("Perfetto trace written to {path} (open at ui.perfetto.dev)");
        }
        None => println!(
            "Perfetto export: {} bytes (pass a path to write it)",
            perfetto.len()
        ),
    }
}
